#include "storage/value.h"

#include <sstream>

namespace mvc {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return os << "NULL";
    case ValueType::kInt64:
      return os << v.AsInt64();
    case ValueType::kDouble:
      return os << v.AsDouble();
    case ValueType::kString:
      return os << "'" << v.AsString() << "'";
  }
  return os;
}

}  // namespace mvc
