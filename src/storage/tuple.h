// Tuple = ordered sequence of Values, plus hashing / formatting helpers.

#pragma once

#include <vector>

#include "storage/value.h"

namespace mvc {

using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t seed = t.size();
    for (const Value& v : t) HashCombine(&seed, v.Hash());
    return seed;
  }
};

/// "[1, 2, 'x']".
std::string TupleToString(const Tuple& t);

}  // namespace mvc
