#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace mvc {

Status Table::Insert(const Tuple& t, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument(
        StrCat("Insert count must be positive, got ", count));
  }
  MVC_RETURN_IF_ERROR(schema_.ValidateTuple(t));
  rows_[t] += count;
  total_count_ += count;
  return Status::OK();
}

Status Table::Delete(const Tuple& t, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument(
        StrCat("Delete count must be positive, got ", count));
  }
  auto it = rows_.find(t);
  if (it == rows_.end() || it->second < count) {
    return Status::FailedPrecondition(
        StrCat("table '", name_, "': cannot delete ", count, " copies of ",
               TupleToString(t), ", only ",
               (it == rows_.end() ? 0 : it->second), " present"));
  }
  it->second -= count;
  total_count_ -= count;
  if (it->second == 0) rows_.erase(it);
  return Status::OK();
}

Status Table::Modify(const Tuple& before, const Tuple& after) {
  auto it = rows_.find(before);
  if (it == rows_.end()) {
    return Status::NotFound(StrCat("table '", name_, "': tuple ",
                                   TupleToString(before), " not present"));
  }
  MVC_RETURN_IF_ERROR(schema_.ValidateTuple(after));
  // Single-copy semantics: a modify update rewrites one row, matching
  // the delta form (-1 before, +1 after) used everywhere else.
  if (--it->second == 0) rows_.erase(it);
  rows_[after] += 1;
  return Status::OK();
}

int64_t Table::CountOf(const Tuple& t) const {
  auto it = rows_.find(t);
  return it == rows_.end() ? 0 : it->second;
}

void Table::Clear() {
  rows_.clear();
  total_count_ = 0;
}

void Table::Scan(const std::function<void(const Tuple&, int64_t)>& fn) const {
  ForEachRow(fn);
}

std::vector<Row> Table::SortedRows() const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const auto& [tuple, count] : rows_) out.push_back(Row{tuple, count});
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.tuple < b.tuple;
  });
  return out;
}

bool Table::ContentsEqual(const Table& other) const {
  if (total_count_ != other.total_count_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  for (const auto& [tuple, count] : rows_) {
    if (other.CountOf(tuple) != count) return false;
  }
  return true;
}

Table Table::Clone() const {
  Table copy(name_, schema_);
  copy.rows_ = rows_;
  copy.total_count_ = total_count_;
  return copy;
}

std::string Table::ToString() const {
  std::ostringstream os;
  os << name_ << " " << schema_.ToString() << " [" << NumRows() << " rows]\n";
  for (const Row& row : SortedRows()) {
    os << "  " << TupleToString(row.tuple);
    if (row.count != 1) os << " x" << row.count;
    os << "\n";
  }
  return os.str();
}

}  // namespace mvc
