// VersionedStore: the MVCC catalog behind the warehouse read path.
//
// The store owns one VersionedTable per view and publishes an immutable
// StoreVersion per warehouse commit (ascending commit ids from 0; group
// commit publishes only batch boundaries, leaving gaps).
// Readers acquire SnapshotHandles — O(1) shared references to a
// StoreVersion — instead of deep catalog clones, so snapshot acquisition
// cost is independent of table size and concurrent commits never tear a
// multi-view read.
//
// Garbage collection is refcount-based: the store retains the last
// `max_retained_versions` past versions for time-travel reads; anything
// older survives exactly as long as some live SnapshotHandle pins it
// (plain shared_ptr ownership). Evicted-but-pinned versions are tracked
// through weak references so the watermark — the oldest commit still
// reachable anywhere — advances as handles are released.
//
// Thread model: all store mutation happens in the owning actor (the
// warehouse). Handles may be released on other threads (ThreadRuntime
// readers); that only touches the shared_ptr control block, which is
// safe without further synchronization.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/versioned_table.h"

namespace mvc {

/// One immutable multi-table version: every view's sealed state after
/// the same commit, plus cached aggregates. Never mutated once built.
struct StoreVersion {
  int64_t commit_id = 0;
  /// Sorted by table name (the store's map order).
  std::vector<TableVersion> tables;
  /// Sum of the member tables' chunk footprints — the bytes a clone-based
  /// snapshot would have copied and this version merely shares.
  size_t approx_bytes = 0;

  /// Binary search by name; nullptr when absent.
  const TableVersion* Find(const std::string& name) const;
};

using StoreVersionPtr = std::shared_ptr<const StoreVersion>;

/// --- Compaction-facing introspection (src/compact/ plans against these;
/// the structs live here so the storage layer stays dependency-free) ---

/// Shape of one table inside one published version.
struct TableVersionStats {
  std::string table;
  size_t num_chunks = 0;
  size_t distinct = 0;
  size_t approx_bytes = 0;
};

/// Shape of one published version.
struct VersionStats {
  int64_t commit_id = 0;
  size_t approx_bytes = 0;
  /// An external SnapshotHandle (reader, in-flight message) pins this
  /// version right now. Compaction policies must not collapse it.
  bool pinned = false;
  std::vector<TableVersionStats> tables;
};

/// Store-wide snapshot a CompactionPolicy plans against. Cheap to build:
/// O(retained versions * tables), no chunk traversal.
struct StoreStats {
  int64_t latest_commit = -1;
  int64_t watermark = -1;
  size_t retained_versions = 0;
  /// Evicted-but-pinned versions (outside the window, kept by handles).
  size_t pinned_evicted = 0;
  size_t max_retained_versions = 0;
  /// Oldest-first detail for retained versions, capped by the caller —
  /// the oldest versions are exactly the compaction candidates.
  std::vector<VersionStats> versions;
  /// True when the cap cut the detail short of the full window.
  bool detail_truncated = false;
};

/// Outcome of one applied compaction primitive (collapse or swap).
struct CompactionApplyResult {
  size_t versions_collapsed = 0;
  /// Victims skipped because they were pinned, the latest version, or
  /// already gone — never an error, compaction is best-effort.
  size_t versions_skipped = 0;
  /// Drop in ResidentChunkBytes() across the operation, clamped at 0
  /// (a swap can transiently add bytes while pins keep old chunks live).
  size_t bytes_reclaimed = 0;
  bool swapped = false;
};

/// An O(1) reference to one StoreVersion. Holding a handle pins the
/// version (and every chunk it shares) against garbage collection;
/// destroying or Release()-ing it is the reader-side GC trigger.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  explicit SnapshotHandle(StoreVersionPtr version)
      : version_(std::move(version)) {}

  bool valid() const { return version_ != nullptr; }
  int64_t commit_id() const { return valid() ? version_->commit_id : -1; }
  size_t approx_bytes() const { return valid() ? version_->approx_bytes : 0; }

  const StoreVersion& version() const {
    MVC_CHECK(valid()) << "access through an empty snapshot handle";
    return *version_;
  }

  /// Flattens one member table — the reader/serialization boundary.
  /// NotFound if the version has no table of that name.
  Result<Table> MaterializeTable(const std::string& name) const;

  /// Drops the reference (same effect as destruction).
  void Release() { version_.reset(); }

 private:
  StoreVersionPtr version_;
};

class VersionedStore {
 public:
  /// `max_retained_versions` = number of PAST versions kept reachable
  /// for time-travel reads; the current version is always retained on
  /// top of this bound.
  explicit VersionedStore(size_t max_retained_versions = 0)
      : max_retained_(max_retained_versions) {}

  size_t max_retained_versions() const { return max_retained_; }

  /// --- Schema / working state ---

  Status CreateTable(const std::string& name, const Schema& schema);
  Result<VersionedTable*> GetTable(const std::string& name);
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;
  size_t NumTables() const { return tables_.size(); }

  /// --- Versioning ---

  /// Seals every table's working state as version `commit_id`. Ids must
  /// be strictly ascending starting at 0 (the initial, pre-commit
  /// state); group commit skips the ids inside a batch, so the sequence
  /// may have gaps — a time-travel read of a skipped id reports it as
  /// never published. Evicts versions beyond the retention bound and
  /// prunes expired weak references (the GC step).
  void Commit(int64_t commit_id);

  /// Latest published commit id; -1 before the first Commit.
  int64_t latest_commit() const {
    return retained_.empty() ? -1 : retained_.back()->commit_id;
  }

  /// O(1) handle to the latest version. Commit(0) must have happened.
  SnapshotHandle AcquireSnapshot() const;

  /// Handle to the version at `commit_id`. NotFound with a clean message
  /// when that version was garbage-collected (or never published).
  Result<SnapshotHandle> AcquireSnapshotAt(int64_t commit_id) const;

  /// --- GC introspection ---

  /// Drops expired weak references to evicted versions. Commit() calls
  /// this; exposed for tests and idle housekeeping.
  void CollectGarbage();

  /// Versions currently reachable: the retained window plus evicted
  /// versions still pinned by live handles.
  size_t versions_live() const;

  /// Oldest commit id still reachable (retained or pinned); -1 when
  /// nothing is published yet.
  int64_t watermark() const;

  /// --- Compaction primitives (the apply side of src/compact/) ---

  /// Snapshot of the store's shape for compaction planning, with
  /// per-version detail for at most `max_version_detail` of the oldest
  /// retained versions.
  StoreStats ComputeStats(size_t max_version_detail) const;

  /// Bytes of chunk storage currently reachable, deduplicated by chunk
  /// identity across the working tables, the retained window, and
  /// pinned evicted versions. O(versions * chunks) — call at compaction
  /// boundaries and sampling points, not per commit.
  size_t ResidentChunkBytes() const;

  /// Removes the listed retained versions from the window (tiered
  /// retention thinning). Best-effort: victims that are the latest
  /// version, currently pinned by a handle, or not retained are skipped
  /// and counted, never an error. A collapsed commit id is afterwards
  /// reported as garbage-collected by AcquireSnapshotAt.
  CompactionApplyResult CollapseVersions(const std::vector<int64_t>& victims);

  /// Atomically replaces one table of the retained version `commit_id`
  /// with `replacement` (a squashed rebuild of the same logical
  /// contents; name, distinct count and total count must match). The
  /// version object is rebuilt and swapped in; handles pinned to the old
  /// version keep observing the old chunks byte for byte — refcount
  /// safety, never in-place mutation.
  Result<CompactionApplyResult> SwapCompactedTable(int64_t commit_id,
                                                   TableVersion replacement);

 private:
  /// Index into retained_ of `commit_id`, or npos. Binary search —
  /// collapse leaves gaps, so the window is not directly indexable.
  size_t RetainedIndexOf(int64_t commit_id) const;
  size_t max_retained_;
  std::map<std::string, std::unique_ptr<VersionedTable>> tables_;
  /// Oldest..newest; back() is the current version.
  std::deque<StoreVersionPtr> retained_;
  /// Versions evicted from the window but possibly still pinned by
  /// handles, oldest first.
  std::deque<std::pair<int64_t, std::weak_ptr<const StoreVersion>>> evicted_;
};

}  // namespace mvc
