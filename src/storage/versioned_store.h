// VersionedStore: the MVCC catalog behind the warehouse read path.
//
// The store owns one VersionedTable per view and publishes an immutable
// StoreVersion per warehouse commit (dense commit ids 0, 1, 2, ...).
// Readers acquire SnapshotHandles — O(1) shared references to a
// StoreVersion — instead of deep catalog clones, so snapshot acquisition
// cost is independent of table size and concurrent commits never tear a
// multi-view read.
//
// Garbage collection is refcount-based: the store retains the last
// `max_retained_versions` past versions for time-travel reads; anything
// older survives exactly as long as some live SnapshotHandle pins it
// (plain shared_ptr ownership). Evicted-but-pinned versions are tracked
// through weak references so the watermark — the oldest commit still
// reachable anywhere — advances as handles are released.
//
// Thread model: all store mutation happens in the owning actor (the
// warehouse). Handles may be released on other threads (ThreadRuntime
// readers); that only touches the shared_ptr control block, which is
// safe without further synchronization.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/versioned_table.h"

namespace mvc {

/// One immutable multi-table version: every view's sealed state after
/// the same commit, plus cached aggregates. Never mutated once built.
struct StoreVersion {
  int64_t commit_id = 0;
  /// Sorted by table name (the store's map order).
  std::vector<TableVersion> tables;
  /// Sum of the member tables' chunk footprints — the bytes a clone-based
  /// snapshot would have copied and this version merely shares.
  size_t approx_bytes = 0;

  /// Binary search by name; nullptr when absent.
  const TableVersion* Find(const std::string& name) const;
};

using StoreVersionPtr = std::shared_ptr<const StoreVersion>;

/// An O(1) reference to one StoreVersion. Holding a handle pins the
/// version (and every chunk it shares) against garbage collection;
/// destroying or Release()-ing it is the reader-side GC trigger.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  explicit SnapshotHandle(StoreVersionPtr version)
      : version_(std::move(version)) {}

  bool valid() const { return version_ != nullptr; }
  int64_t commit_id() const { return valid() ? version_->commit_id : -1; }
  size_t approx_bytes() const { return valid() ? version_->approx_bytes : 0; }

  const StoreVersion& version() const {
    MVC_CHECK(valid()) << "access through an empty snapshot handle";
    return *version_;
  }

  /// Flattens one member table — the reader/serialization boundary.
  /// NotFound if the version has no table of that name.
  Result<Table> MaterializeTable(const std::string& name) const;

  /// Drops the reference (same effect as destruction).
  void Release() { version_.reset(); }

 private:
  StoreVersionPtr version_;
};

class VersionedStore {
 public:
  /// `max_retained_versions` = number of PAST versions kept reachable
  /// for time-travel reads; the current version is always retained on
  /// top of this bound.
  explicit VersionedStore(size_t max_retained_versions = 0)
      : max_retained_(max_retained_versions) {}

  size_t max_retained_versions() const { return max_retained_; }

  /// --- Schema / working state ---

  Status CreateTable(const std::string& name, const Schema& schema);
  Result<VersionedTable*> GetTable(const std::string& name);
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  std::vector<std::string> TableNames() const;
  size_t NumTables() const { return tables_.size(); }

  /// --- Versioning ---

  /// Seals every table's working state as version `commit_id`. Ids must
  /// be dense and ascending starting at 0 (the initial, pre-commit
  /// state). Evicts versions beyond the retention bound and prunes
  /// expired weak references (the GC step).
  void Commit(int64_t commit_id);

  /// Latest published commit id; -1 before the first Commit.
  int64_t latest_commit() const {
    return retained_.empty() ? -1 : retained_.back()->commit_id;
  }

  /// O(1) handle to the latest version. Commit(0) must have happened.
  SnapshotHandle AcquireSnapshot() const;

  /// Handle to the version at `commit_id`. NotFound with a clean message
  /// when that version was garbage-collected (or never published).
  Result<SnapshotHandle> AcquireSnapshotAt(int64_t commit_id) const;

  /// --- GC introspection ---

  /// Drops expired weak references to evicted versions. Commit() calls
  /// this; exposed for tests and idle housekeeping.
  void CollectGarbage();

  /// Versions currently reachable: the retained window plus evicted
  /// versions still pinned by live handles.
  size_t versions_live() const;

  /// Oldest commit id still reachable (retained or pinned); -1 when
  /// nothing is published yet.
  int64_t watermark() const;

 private:
  size_t max_retained_;
  std::map<std::string, std::unique_ptr<VersionedTable>> tables_;
  /// Oldest..newest; back() is the current version.
  std::deque<StoreVersionPtr> retained_;
  /// Versions evicted from the window but possibly still pinned by
  /// handles, oldest first.
  std::deque<std::pair<int64_t, std::weak_ptr<const StoreVersion>>> evicted_;
};

}  // namespace mvc
