// Interned, dense integer identities for views and base relations.
//
// Every layer that moves update/REL/AL traffic — integrator fan-out,
// merge painting, warehouse application — speaks ViewId/RelationId
// instead of strings, so the per-event hot paths never hash or compare
// names. Names are interned once, at wiring time, by the IdRegistry;
// they are resolved back only at the two boundaries that need them:
// scenario/catalog ingest and trace rendering.
//
// Ids are dense and 0-based (mint order), so they index plain vectors.
// The registry is written only while the system is wired single-threaded;
// afterwards processes hold const pointers and only read it, which is
// safe under ThreadRuntime.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"

namespace mvc {

/// Dense 0-based identity of a warehouse view (mint order).
using ViewId = int32_t;
/// Dense 0-based identity of a base relation (mint order).
using RelationId = int32_t;

constexpr ViewId kInvalidView = -1;
constexpr RelationId kInvalidRelation = -1;

class IdRegistry {
 public:
  /// --- Minting (wiring time only) ---

  /// Returns the id of `name`, minting the next dense id on first use.
  /// Idempotent: interning the same name again returns the same id.
  ViewId InternView(const std::string& name);
  RelationId InternRelation(const std::string& name);

  /// Interns a batch, preserving order.
  std::vector<ViewId> InternViews(const std::vector<std::string>& names);

  /// --- Lookup (any time; read-only) ---

  /// Id of an already-interned name, or nullopt.
  std::optional<ViewId> FindView(const std::string& name) const;
  std::optional<RelationId> FindRelation(const std::string& name) const;

  /// Name of a minted id; the id must be valid.
  const std::string& ViewName(ViewId id) const {
    MVC_CHECK(id >= 0 && static_cast<size_t>(id) < view_names_.size())
        << "unknown ViewId " << id;
    return view_names_[static_cast<size_t>(id)];
  }
  const std::string& RelationName(RelationId id) const {
    MVC_CHECK(id >= 0 && static_cast<size_t>(id) < relation_names_.size())
        << "unknown RelationId " << id;
    return relation_names_[static_cast<size_t>(id)];
  }

  size_t num_views() const { return view_names_.size(); }
  size_t num_relations() const { return relation_names_.size(); }

 private:
  std::map<std::string, ViewId> view_ids_;
  std::vector<std::string> view_names_;
  std::map<std::string, RelationId> relation_ids_;
  std::vector<std::string> relation_names_;
};

}  // namespace mvc
