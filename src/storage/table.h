// Bag-semantics relation storage.
//
// Tables store multisets of tuples as (tuple -> multiplicity) maps.
// Counting multiplicities (rather than storing duplicate rows) is what
// makes incremental maintenance of projection views correct: deleting one
// contributing base tuple decrements the count of its projected image and
// only removes the image when the count reaches zero (the classic
// counting algorithm).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace mvc {

/// A (tuple, multiplicity) pair as returned by Table scans.
struct Row {
  Tuple tuple;
  int64_t count = 0;

  bool operator==(const Row& other) const {
    return count == other.count && tuple == other.tuple;
  }
};

/// A batch of rows handed to Table::ForEachBlock. Tuples are borrowed
/// from the table and stay valid only for the duration of the callback.
struct RowBlock {
  static constexpr size_t kCapacity = 256;
  const Tuple* tuples[kCapacity];
  int64_t counts[kCapacity];
  size_t size = 0;
};

/// In-memory bag-semantics relation.
///
/// Not thread safe; each owning process serializes access (sources and the
/// warehouse are single actors).
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Adds `count` copies of `t` (count > 0). Validates against the schema.
  Status Insert(const Tuple& t, int64_t count = 1);

  /// Removes `count` copies of `t` (count > 0). Fails with
  /// FailedPrecondition if fewer than `count` copies exist — deleting a
  /// non-existent tuple from a materialized view indicates a maintenance
  /// bug and must surface loudly.
  Status Delete(const Tuple& t, int64_t count = 1);

  /// Replaces one copy of `before` with `after` (single-copy semantics,
  /// matching the -1/+1 delta form of a modify update). NotFound if
  /// absent.
  Status Modify(const Tuple& before, const Tuple& after);

  /// Multiplicity of `t` (0 if absent).
  int64_t CountOf(const Tuple& t) const;

  bool Contains(const Tuple& t) const { return CountOf(t) > 0; }

  /// Number of distinct tuples.
  size_t NumDistinct() const { return rows_.size(); }

  /// Total multiplicity over all tuples.
  int64_t NumRows() const { return total_count_; }

  bool empty() const { return rows_.empty(); }

  /// Removes all rows.
  void Clear();

  /// Calls `fn(const Tuple&, int64_t)` for each distinct tuple with its
  /// multiplicity, statically dispatched — no std::function allocation or
  /// indirect call per row. Iteration order is unspecified; use
  /// SortedRows() when order matters. Preferred over Scan() on hot paths.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (const auto& [tuple, count] : rows_) fn(tuple, count);
  }

  /// Calls `fn(const RowBlock&)` over batches of up to RowBlock::kCapacity
  /// rows — the vectorized cousin of ForEachRow for callers that amortize
  /// per-row work across a block.
  template <typename Fn>
  void ForEachBlock(Fn&& fn) const {
    RowBlock block;
    for (const auto& [tuple, count] : rows_) {
      block.tuples[block.size] = &tuple;
      block.counts[block.size] = count;
      if (++block.size == RowBlock::kCapacity) {
        fn(static_cast<const RowBlock&>(block));
        block.size = 0;
      }
    }
    if (block.size > 0) fn(static_cast<const RowBlock&>(block));
  }

  /// Calls `fn` for each distinct tuple with its multiplicity.
  /// Iteration order is unspecified; use SortedRows() when order matters.
  /// Legacy type-erased form; new callers should use ForEachRow.
  void Scan(const std::function<void(const Tuple&, int64_t)>& fn) const;

  /// All rows sorted lexicographically by tuple — deterministic view of
  /// the bag, used for equality checks, golden tests, and printing.
  std::vector<Row> SortedRows() const;

  /// Bag equality: same distinct tuples with the same multiplicities.
  bool ContentsEqual(const Table& other) const;

  /// Deep copy (used to snapshot source states for the oracle).
  Table Clone() const;

  /// ASCII rendering with a header row, rows sorted; multiplicities > 1
  /// shown as a trailing "xN".
  std::string ToString() const;

 private:
  std::string name_;
  Schema schema_;
  std::unordered_map<Tuple, int64_t, TupleHash> rows_;
  int64_t total_count_ = 0;
};

}  // namespace mvc
