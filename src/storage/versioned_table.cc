#include "storage/versioned_table.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace mvc {

size_t ApproxTupleBytes(const Tuple& t) {
  // Hash-node overhead plus the inline Value footprint; string payloads
  // add their character count. An estimate, not an allocator audit.
  size_t bytes = 48 + 8;  // node + count
  for (const Value& v : t) {
    bytes += sizeof(Value);
    if (v.type() == ValueType::kString) bytes += v.AsString().size();
  }
  return bytes;
}

Tuple ColumnBlock::RowTuple(size_t r) const {
  Tuple t;
  t.reserve(columns.size());
  for (const std::vector<Value>& col : columns) t.push_back(col[r]);
  return t;
}

std::shared_ptr<const ColumnBlock> BuildColumnBlock(const Chunk& chunk,
                                                    size_t num_columns) {
  auto block = std::make_shared<ColumnBlock>();
  block->columns.resize(num_columns);
  for (std::vector<Value>& col : block->columns) {
    col.reserve(chunk.rows.size());
  }
  block->counts.reserve(chunk.rows.size());
  for (const auto& [tuple, count] : chunk.rows) {
    MVC_CHECK(tuple.size() == num_columns)
        << "chunk row arity " << tuple.size() << " != schema width "
        << num_columns;
    for (size_t c = 0; c < num_columns; ++c) {
      block->columns[c].push_back(tuple[c]);
    }
    block->counts.push_back(count);
  }
  return block;
}

int64_t TableVersion::CountOf(const Tuple& t) const {
  if (chunks == nullptr || chunks->empty()) return 0;
  const Chunk& chunk = *(*chunks)[TupleHash{}(t) & (chunks->size() - 1)];
  auto it = chunk.rows.find(t);
  return it == chunk.rows.end() ? 0 : it->second;
}

Table TableVersion::Materialize() const {
  Table table(name, schema);
  if (chunks != nullptr) {
    for (const ChunkPtr& chunk : *chunks) {
      for (const auto& [tuple, count] : chunk->rows) {
        Status st = table.Insert(tuple, count);
        MVC_CHECK(st.ok()) << "materialize of sealed version failed: "
                           << st.ToString();
      }
    }
  }
  return table;
}

VersionedTable::VersionedTable(std::string name, Schema schema,
                               size_t target_chunk_rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      target_chunk_rows_(std::max<size_t>(1, target_chunk_rows)) {
  chunks_.resize(kMinChunks);
  for (ChunkPtr& chunk : chunks_) chunk = std::make_shared<Chunk>();
  owned_.assign(chunks_.size(), true);
}

Chunk* VersionedTable::MutableChunk(size_t idx) {
  if (!owned_[idx]) {
    auto clone = std::make_shared<Chunk>(*chunks_[idx]);
    // The clone is about to diverge from the sealed original; drop the
    // shared columnar projection so it cannot go stale. Seal() rebuilds
    // it when this chunk is next published.
    clone->columnar.reset();
    chunks_[idx] = std::move(clone);
    owned_[idx] = true;
    ++chunks_copied_;
  }
  // The only non-const alias: this table created the chunk above (or at
  // growth/clear time) and has not sealed it yet.
  return const_cast<Chunk*>(chunks_[idx].get());
}

void VersionedTable::MaybeGrow() {
  if (distinct_ <= chunks_.size() * target_chunk_rows_) return;
  ChunkVec grown(chunks_.size() * 2);
  for (ChunkPtr& chunk : grown) chunk = std::make_shared<Chunk>();
  for (const ChunkPtr& old : chunks_) {
    for (const auto& [tuple, count] : old->rows) {
      Chunk* dst =
          const_cast<Chunk*>(grown[TupleHash{}(tuple) & (grown.size() - 1)]
                                 .get());
      dst->rows.emplace(tuple, count);
      dst->total_count += count;
      dst->approx_bytes += ApproxTupleBytes(tuple);
    }
  }
  chunks_ = std::move(grown);
  owned_.assign(chunks_.size(), true);
}

Status VersionedTable::Insert(const Tuple& t, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument(
        StrCat("Insert count must be positive, got ", count));
  }
  MVC_RETURN_IF_ERROR(schema_.ValidateTuple(t));
  Chunk* chunk = MutableChunk(ChunkIndex(t));
  auto [it, inserted] = chunk->rows.try_emplace(t, 0);
  if (inserted) {
    ++distinct_;
    const size_t bytes = ApproxTupleBytes(t);
    chunk->approx_bytes += bytes;
    approx_bytes_ += bytes;
  }
  it->second += count;
  chunk->total_count += count;
  total_count_ += count;
  MaybeGrow();
  return Status::OK();
}

Status VersionedTable::Delete(const Tuple& t, int64_t count) {
  if (count <= 0) {
    return Status::InvalidArgument(
        StrCat("Delete count must be positive, got ", count));
  }
  const size_t idx = ChunkIndex(t);
  const Chunk& current = *chunks_[idx];
  auto present = current.rows.find(t);
  const int64_t have = present == current.rows.end() ? 0 : present->second;
  if (have < count) {
    return Status::FailedPrecondition(
        StrCat("table '", name_, "': cannot delete ", count, " copies of ",
               TupleToString(t), ", only ", have, " present"));
  }
  Chunk* chunk = MutableChunk(idx);
  auto it = chunk->rows.find(t);
  it->second -= count;
  chunk->total_count -= count;
  total_count_ -= count;
  if (it->second == 0) {
    const size_t bytes = ApproxTupleBytes(t);
    chunk->approx_bytes -= bytes;
    approx_bytes_ -= bytes;
    chunk->rows.erase(it);
    --distinct_;
  }
  return Status::OK();
}

Status VersionedTable::ApplyDelta(const TableDelta& delta) {
  // Net out duplicate tuples, then validate every deletion before any
  // mutation — identical semantics to TableDelta::ApplyTo on a Table.
  std::unordered_map<Tuple, int64_t, TupleHash> net;
  for (const DeltaRow& row : delta.rows) net[row.tuple] += row.count;
  for (const auto& [tuple, count] : net) {
    if (count < 0 && CountOf(tuple) < -count) {
      return Status::FailedPrecondition(
          StrCat("delta on '", name_, "' deletes ", -count, " copies of ",
                 TupleToString(tuple), " but only ", CountOf(tuple),
                 " present"));
    }
  }
  for (const auto& [tuple, count] : net) {
    if (count > 0) {
      MVC_RETURN_IF_ERROR(Insert(tuple, count));
    } else if (count < 0) {
      MVC_RETURN_IF_ERROR(Delete(tuple, -count));
    }
  }
  return Status::OK();
}

void VersionedTable::Clear() {
  for (ChunkPtr& chunk : chunks_) chunk = std::make_shared<Chunk>();
  owned_.assign(chunks_.size(), true);
  distinct_ = 0;
  total_count_ = 0;
  approx_bytes_ = 0;
}

int64_t VersionedTable::CountOf(const Tuple& t) const {
  const Chunk& chunk = *chunks_[ChunkIndex(t)];
  auto it = chunk.rows.find(t);
  return it == chunk.rows.end() ? 0 : it->second;
}

Table VersionedTable::Materialize() const {
  Table table(name_, schema_);
  for (const ChunkPtr& chunk : chunks_) {
    for (const auto& [tuple, count] : chunk->rows) {
      Status st = table.Insert(tuple, count);
      MVC_CHECK(st.ok()) << "materialize failed: " << st.ToString();
    }
  }
  return table;
}

size_t VersionedTable::ResidentChunkBytes(
    std::unordered_set<const Chunk*>* seen) const {
  size_t bytes = 0;
  for (const ChunkPtr& chunk : chunks_) {
    if (chunk != nullptr && seen->insert(chunk.get()).second) {
      bytes += chunk->approx_bytes;
    }
  }
  return bytes;
}

TableVersion VersionedTable::Seal() {
  // Freeze the columnar projection of every chunk touched since the last
  // seal. Untouched chunks already carry the block built when they were
  // first published, so a commit still costs O(delta), not O(table).
  for (size_t i = 0; i < chunks_.size(); ++i) {
    if (owned_[i]) {
      const_cast<Chunk*>(chunks_[i].get())->columnar =
          BuildColumnBlock(*chunks_[i], schema_.num_columns());
    }
  }
  TableVersion version;
  version.name = name_;
  version.schema = schema_;
  version.chunks = std::make_shared<const ChunkVec>(chunks_);
  version.distinct = distinct_;
  version.total_count = total_count_;
  version.approx_bytes = approx_bytes_;
  // Everything published is frozen: the next write to any chunk clones.
  owned_.assign(chunks_.size(), false);
  return version;
}

}  // namespace mvc
