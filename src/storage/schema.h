// Relation schemas: ordered, named, typed columns.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace mvc {

/// One column of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered column list describing a relation or view output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Convenience: all-INT64 schema from column names (the paper's
  /// examples use integer attributes throughout).
  static Schema AllInt64(const std::vector<std::string>& names);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, if present.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Index of the column named `name`; InvalidArgument if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Verifies `t` has the right arity and each non-NULL value matches the
  /// column type.
  Status ValidateTuple(const Tuple& t) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// "(A INT64, B STRING)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace mvc
