#include "storage/catalog.h"

#include "common/string_util.h"

namespace mvc {

Status Catalog::CreateTable(const std::string& name, const Schema& schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' already exists"));
  }
  tables_[name] = std::make_unique<Table>(name, schema);
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  tables_.erase(it);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Catalog Catalog::Clone() const {
  Catalog copy;
  for (const auto& [name, table] : tables_) {
    copy.tables_[name] = std::make_unique<Table>(table->Clone());
  }
  return copy;
}

}  // namespace mvc
