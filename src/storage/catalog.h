// Catalog: named table container used by sources and the warehouse.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace mvc {

/// Owns a set of named tables. Deterministically ordered by name.
class Catalog {
 public:
  /// Creates an empty table; AlreadyExists if the name is taken.
  Status CreateTable(const std::string& name, const Schema& schema);

  /// Removes a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// Mutable table lookup; NotFound if absent.
  Result<Table*> GetTable(const std::string& name);

  /// Const table lookup; NotFound if absent.
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  size_t NumTables() const { return tables_.size(); }

  /// Deep copy of all tables (state snapshotting for the oracle).
  Catalog Clone() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace mvc
