// Source update and transaction records.
//
// A source transaction is the unit of atomicity at a source. In the
// paper's base model (Section 2.1) each transaction performs a single
// update on a single source; Section 6.2 extends the algorithms to
// multi-update, multi-source transactions by treating the transaction as
// the unit the merge process coordinates. We model both: a
// SourceTransaction carries one or more Updates.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/tuple.h"

namespace mvc {

/// Kind of change a single update makes to one base relation.
enum class UpdateOp : uint8_t { kInsert = 0, kDelete = 1, kModify = 2 };

const char* UpdateOpToString(UpdateOp op);

/// One tuple-level change to one base relation at one source.
struct Update {
  /// Name of the source the relation lives at.
  std::string source;
  /// Base relation name (relation names are globally unique).
  std::string relation;
  UpdateOp op = UpdateOp::kInsert;
  /// Inserted tuple (kInsert), deleted tuple (kDelete), or the old tuple
  /// (kModify).
  Tuple tuple;
  /// New tuple for kModify; empty otherwise.
  Tuple new_tuple;

  static Update Insert(std::string source, std::string relation, Tuple t) {
    return Update{std::move(source), std::move(relation), UpdateOp::kInsert,
                  std::move(t), {}};
  }
  static Update Delete(std::string source, std::string relation, Tuple t) {
    return Update{std::move(source), std::move(relation), UpdateOp::kDelete,
                  std::move(t), {}};
  }
  static Update Modify(std::string source, std::string relation, Tuple before,
                       Tuple after) {
    return Update{std::move(source), std::move(relation), UpdateOp::kModify,
                  std::move(before), std::move(after)};
  }

  bool operator==(const Update& other) const {
    return source == other.source && relation == other.relation &&
           op == other.op && tuple == other.tuple &&
           new_tuple == other.new_tuple;
  }

  std::string ToString() const;
};

/// A committed source transaction: one or more updates applied atomically
/// at its source (or, for the Section 6.2 global-transaction extension,
/// across sources).
struct SourceTransaction {
  /// Source-local commit sequence number (1-based, per source). For
  /// global transactions this is the coordinator's sequence number.
  int64_t local_seq = 0;
  std::vector<Update> updates;
  /// Section 6.2 extension: non-zero when this is one source's part of a
  /// global transaction spanning several sources. The integrator merges
  /// all parts carrying the same id into a single atomic unit.
  int64_t global_txn_id = 0;
  /// Number of sources participating in the global transaction (how many
  /// parts the integrator must collect). 0 when not global.
  int32_t global_participants = 0;
  /// Sharded-ingest stamp (set by the integrator shard that numbered the
  /// transaction): which shard sequenced it, and its position in that
  /// shard's own stream. The global order lives in the cross-shard
  /// ticket (the UpdateId); the epoch exists so per-shard streams stay
  /// auditable after the fan-out. Both 0 when unsharded.
  int32_t shard = 0;
  int64_t shard_epoch = 0;

  std::string ToString() const;
};

}  // namespace mvc
