#include "storage/update.h"

#include <sstream>

namespace mvc {

const char* UpdateOpToString(UpdateOp op) {
  switch (op) {
    case UpdateOp::kInsert:
      return "INSERT";
    case UpdateOp::kDelete:
      return "DELETE";
    case UpdateOp::kModify:
      return "MODIFY";
  }
  return "?";
}

std::string Update::ToString() const {
  std::ostringstream os;
  os << UpdateOpToString(op) << " " << relation << " " << TupleToString(tuple);
  if (op == UpdateOp::kModify) os << " -> " << TupleToString(new_tuple);
  os << " @" << source;
  return os.str();
}

std::string SourceTransaction::ToString() const {
  std::ostringstream os;
  os << "Txn(seq=" << local_seq << ", [";
  bool first = true;
  for (const Update& u : updates) {
    if (!first) os << "; ";
    os << u.ToString();
    first = false;
  }
  os << "])";
  return os.str();
}

}  // namespace mvc
