#include "storage/versioned_store.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvc {

const TableVersion* StoreVersion::Find(const std::string& name) const {
  auto it = std::lower_bound(
      tables.begin(), tables.end(), name,
      [](const TableVersion& t, const std::string& n) { return t.name < n; });
  if (it == tables.end() || it->name != name) return nullptr;
  return &*it;
}

Result<Table> SnapshotHandle::MaterializeTable(const std::string& name) const {
  MVC_CHECK(valid()) << "materialize through an empty snapshot handle";
  const TableVersion* table = version_->Find(name);
  if (table == nullptr) {
    return Status::NotFound(
        StrCat("snapshot @commit ", version_->commit_id, " has no table '",
               name, "'"));
  }
  return table->Materialize();
}

Status VersionedStore::CreateTable(const std::string& name,
                                   const Schema& schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' already exists"));
  }
  tables_.emplace(name, std::make_unique<VersionedTable>(name, schema));
  return Status::OK();
}

Result<VersionedTable*> VersionedStore::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  return it->second.get();
}

std::vector<std::string> VersionedStore::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void VersionedStore::Commit(int64_t commit_id) {
  MVC_CHECK(commit_id == latest_commit() + 1)
      << "store commit ids must be dense: got " << commit_id << " after "
      << latest_commit();
  auto version = std::make_shared<StoreVersion>();
  version->commit_id = commit_id;
  version->tables.reserve(tables_.size());
  for (auto& [name, table] : tables_) {
    version->tables.push_back(table->Seal());
    version->approx_bytes += version->tables.back().approx_bytes;
  }
  retained_.push_back(std::move(version));
  while (retained_.size() > max_retained_ + 1) {
    evicted_.emplace_back(retained_.front()->commit_id,
                          std::weak_ptr<const StoreVersion>(retained_.front()));
    retained_.pop_front();
  }
  CollectGarbage();
}

SnapshotHandle VersionedStore::AcquireSnapshot() const {
  MVC_CHECK(!retained_.empty())
      << "snapshot acquired before the initial version was published";
  return SnapshotHandle(retained_.back());
}

Result<SnapshotHandle> VersionedStore::AcquireSnapshotAt(
    int64_t commit_id) const {
  if (retained_.empty() || commit_id > latest_commit() || commit_id < 0) {
    return Status::NotFound(
        StrCat("commit ", commit_id, " has not been published (latest is ",
               latest_commit(), ")"));
  }
  const int64_t front = retained_.front()->commit_id;
  if (commit_id < front) {
    return Status::NotFound(
        StrCat("commit ", commit_id,
               " is outside the retained window [", front, ", ",
               latest_commit(), "]; the version was garbage-collected"));
  }
  // Commit ids are dense, so the window is directly indexable.
  return SnapshotHandle(retained_[static_cast<size_t>(commit_id - front)]);
}

void VersionedStore::CollectGarbage() {
  // Expired entries can sit between live ones (handles released out of
  // order), so compact the whole deque, not just the front.
  std::deque<std::pair<int64_t, std::weak_ptr<const StoreVersion>>> live;
  for (auto& entry : evicted_) {
    if (!entry.second.expired()) live.push_back(std::move(entry));
  }
  evicted_ = std::move(live);
}

size_t VersionedStore::versions_live() const {
  size_t pinned = 0;
  for (const auto& [commit, weak] : evicted_) {
    if (!weak.expired()) ++pinned;
  }
  return retained_.size() + pinned;
}

int64_t VersionedStore::watermark() const {
  for (const auto& [commit, weak] : evicted_) {
    if (!weak.expired()) return commit;
  }
  return retained_.empty() ? -1 : retained_.front()->commit_id;
}

}  // namespace mvc
