#include "storage/versioned_store.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace mvc {

const TableVersion* StoreVersion::Find(const std::string& name) const {
  auto it = std::lower_bound(
      tables.begin(), tables.end(), name,
      [](const TableVersion& t, const std::string& n) { return t.name < n; });
  if (it == tables.end() || it->name != name) return nullptr;
  return &*it;
}

Result<Table> SnapshotHandle::MaterializeTable(const std::string& name) const {
  MVC_CHECK(valid()) << "materialize through an empty snapshot handle";
  const TableVersion* table = version_->Find(name);
  if (table == nullptr) {
    return Status::NotFound(
        StrCat("snapshot @commit ", version_->commit_id, " has no table '",
               name, "'"));
  }
  return table->Materialize();
}

Status VersionedStore::CreateTable(const std::string& name,
                                   const Schema& schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' already exists"));
  }
  tables_.emplace(name, std::make_unique<VersionedTable>(name, schema));
  return Status::OK();
}

Result<VersionedTable*> VersionedStore::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table '", name, "'"));
  }
  return it->second.get();
}

std::vector<std::string> VersionedStore::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void VersionedStore::Commit(int64_t commit_id) {
  // Group commit publishes only batch boundaries, so ids may skip; they
  // must still strictly ascend (the window search relies on ordering).
  MVC_CHECK(commit_id > latest_commit())
      << "store commit ids must ascend: got " << commit_id << " after "
      << latest_commit();
  auto version = std::make_shared<StoreVersion>();
  version->commit_id = commit_id;
  version->tables.reserve(tables_.size());
  for (auto& [name, table] : tables_) {
    version->tables.push_back(table->Seal());
    version->approx_bytes += version->tables.back().approx_bytes;
  }
  retained_.push_back(std::move(version));
  while (retained_.size() > max_retained_ + 1) {
    evicted_.emplace_back(retained_.front()->commit_id,
                          std::weak_ptr<const StoreVersion>(retained_.front()));
    retained_.pop_front();
  }
  CollectGarbage();
}

SnapshotHandle VersionedStore::AcquireSnapshot() const {
  MVC_CHECK(!retained_.empty())
      << "snapshot acquired before the initial version was published";
  return SnapshotHandle(retained_.back());
}

Result<SnapshotHandle> VersionedStore::AcquireSnapshotAt(
    int64_t commit_id) const {
  if (retained_.empty() || commit_id > latest_commit() || commit_id < 0) {
    return Status::NotFound(
        StrCat("commit ", commit_id, " has not been published (latest is ",
               latest_commit(), ")"));
  }
  const int64_t front = retained_.front()->commit_id;
  if (commit_id < front) {
    return Status::NotFound(
        StrCat("commit ", commit_id,
               " is outside the retained window [", front, ", ",
               latest_commit(), "]; the version was garbage-collected"));
  }
  // Compaction may have thinned the window, so ids are no longer dense:
  // binary search instead of direct indexing.
  const size_t idx = RetainedIndexOf(commit_id);
  if (idx == retained_.size()) {
    return Status::NotFound(
        StrCat("commit ", commit_id, " was garbage-collected (collapsed by ",
               "compaction inside the retained window [", front, ", ",
               latest_commit(), "])"));
  }
  return SnapshotHandle(retained_[idx]);
}

size_t VersionedStore::RetainedIndexOf(int64_t commit_id) const {
  auto it = std::lower_bound(
      retained_.begin(), retained_.end(), commit_id,
      [](const StoreVersionPtr& v, int64_t id) { return v->commit_id < id; });
  if (it == retained_.end() || (*it)->commit_id != commit_id) {
    return retained_.size();
  }
  return static_cast<size_t>(it - retained_.begin());
}

void VersionedStore::CollectGarbage() {
  // Expired entries can sit between live ones (handles released out of
  // order), so compact the whole deque, not just the front.
  std::deque<std::pair<int64_t, std::weak_ptr<const StoreVersion>>> live;
  for (auto& entry : evicted_) {
    if (!entry.second.expired()) live.push_back(std::move(entry));
  }
  evicted_ = std::move(live);
}

size_t VersionedStore::versions_live() const {
  size_t pinned = 0;
  for (const auto& [commit, weak] : evicted_) {
    if (!weak.expired()) ++pinned;
  }
  return retained_.size() + pinned;
}

int64_t VersionedStore::watermark() const {
  // Min over everything reachable: evicted entries are usually older
  // than the window front, but take the minimum rather than trusting
  // ordering so the invariant survives future eviction paths.
  int64_t mark = retained_.empty() ? -1 : retained_.front()->commit_id;
  for (const auto& [commit, weak] : evicted_) {
    if (!weak.expired() && (mark < 0 || commit < mark)) mark = commit;
  }
  return mark;
}

StoreStats VersionedStore::ComputeStats(size_t max_version_detail) const {
  StoreStats stats;
  stats.latest_commit = latest_commit();
  stats.watermark = watermark();
  stats.retained_versions = retained_.size();
  stats.max_retained_versions = max_retained_;
  for (const auto& [commit, weak] : evicted_) {
    if (!weak.expired()) ++stats.pinned_evicted;
  }
  const size_t detail = std::min(max_version_detail, retained_.size());
  stats.detail_truncated = detail < retained_.size();
  stats.versions.reserve(detail);
  for (size_t i = 0; i < detail; ++i) {
    const StoreVersionPtr& version = retained_[i];
    VersionStats vs;
    vs.commit_id = version->commit_id;
    vs.approx_bytes = version->approx_bytes;
    // The deque holds the only long-lived strong reference; anything
    // beyond it is an outstanding handle (or an in-flight message).
    vs.pinned = version.use_count() > 1;
    vs.tables.reserve(version->tables.size());
    for (const TableVersion& tv : version->tables) {
      vs.tables.push_back(TableVersionStats{
          tv.name, tv.chunks == nullptr ? 0 : tv.chunks->size(), tv.distinct,
          tv.approx_bytes});
    }
    stats.versions.push_back(std::move(vs));
  }
  return stats;
}

size_t VersionedStore::ResidentChunkBytes() const {
  std::unordered_set<const Chunk*> seen;
  size_t bytes = 0;
  auto add_version = [&](const StoreVersion& version) {
    for (const TableVersion& tv : version.tables) {
      if (tv.chunks == nullptr) continue;
      for (const ChunkPtr& chunk : *tv.chunks) {
        if (chunk != nullptr && seen.insert(chunk.get()).second) {
          bytes += chunk->approx_bytes;
        }
      }
    }
  };
  for (const StoreVersionPtr& version : retained_) add_version(*version);
  for (const auto& [commit, weak] : evicted_) {
    if (StoreVersionPtr version = weak.lock()) add_version(*version);
  }
  // Working state: since the last seal, only copied-on-write chunks are
  // distinct from the newest version's — the dedup handles the overlap.
  for (const auto& [name, table] : tables_) {
    bytes += table->ResidentChunkBytes(&seen);
  }
  return bytes;
}

CompactionApplyResult VersionedStore::CollapseVersions(
    const std::vector<int64_t>& victims) {
  CompactionApplyResult result;
  if (victims.empty()) return result;
  const size_t before = ResidentChunkBytes();
  for (int64_t victim : victims) {
    const size_t idx = RetainedIndexOf(victim);
    if (idx == retained_.size() ||                // already gone
        retained_[idx] == retained_.back() ||     // never drop the latest
        retained_[idx].use_count() > 1) {         // pinned by a handle
      ++result.versions_skipped;
      continue;
    }
    // Dropping the deque slot releases the last strong reference; the
    // version's unshared chunks die here, shared ones live on in the
    // neighbouring versions that reference them.
    retained_.erase(retained_.begin() + static_cast<ptrdiff_t>(idx));
    ++result.versions_collapsed;
  }
  const size_t after = ResidentChunkBytes();
  result.bytes_reclaimed = before > after ? before - after : 0;
  return result;
}

Result<CompactionApplyResult> VersionedStore::SwapCompactedTable(
    int64_t commit_id, TableVersion replacement) {
  const size_t idx = RetainedIndexOf(commit_id);
  if (idx == retained_.size()) {
    return Status::NotFound(
        StrCat("commit ", commit_id,
               " is not retained (garbage-collected before the swap)"));
  }
  const StoreVersion& old = *retained_[idx];
  const TableVersion* old_table = old.Find(replacement.name);
  if (old_table == nullptr) {
    return Status::NotFound(StrCat("version @", commit_id, " has no table '",
                                   replacement.name, "'"));
  }
  if (old_table->distinct != replacement.distinct ||
      old_table->total_count != replacement.total_count) {
    return Status::InvalidArgument(
        StrCat("squashed rebuild of '", replacement.name, "' @", commit_id,
               " does not match the original: distinct ", replacement.distinct,
               " vs ", old_table->distinct, ", total ",
               replacement.total_count, " vs ", old_table->total_count));
  }
  const size_t before = ResidentChunkBytes();
  // Rebuild the version object rather than mutating it: any handle
  // pinned to the old version keeps its shared_ptr and keeps observing
  // the old chunks byte for byte.
  auto rebuilt = std::make_shared<StoreVersion>();
  rebuilt->commit_id = old.commit_id;
  rebuilt->tables.reserve(old.tables.size());
  for (const TableVersion& tv : old.tables) {
    rebuilt->tables.push_back(tv.name == replacement.name ? replacement : tv);
    rebuilt->approx_bytes += rebuilt->tables.back().approx_bytes;
  }
  retained_[idx] = std::move(rebuilt);
  const size_t after = ResidentChunkBytes();
  CompactionApplyResult result;
  result.swapped = true;
  result.bytes_reclaimed = before > after ? before - after : 0;
  return result;
}

}  // namespace mvc
