#include "storage/tuple.h"

#include <sstream>

namespace mvc {

std::string TupleToString(const Tuple& t) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Value& v : t) {
    if (!first) os << ", ";
    os << v;
    first = false;
  }
  os << "]";
  return os.str();
}

}  // namespace mvc
