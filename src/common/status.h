// Status: lightweight error propagation for the WHIPS-MVC library.
//
// The library does not throw exceptions on its hot paths; fallible
// operations return Status (or Result<T>, see result.h) in the style of
// Arrow / RocksDB. A default-constructed Status is OK and carries no
// allocation.

#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace mvc {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kAborted = 8,
  kConsistencyViolation = 9,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK, or a code plus message.
///
/// Cheap to copy when OK (single pointer, null). Error states allocate a
/// small shared payload so Status can be copied freely through message
/// queues.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ConsistencyViolation(std::string msg) {
    return Status(StatusCode::kConsistencyViolation, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsConsistencyViolation() const {
    return code() == StatusCode::kConsistencyViolation;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace mvc

/// Propagates a non-OK Status to the caller.
#define MVC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::mvc::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)
