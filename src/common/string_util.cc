#include "common/string_util.h"

namespace mvc {

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace mvc
