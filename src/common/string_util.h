// Small string helpers shared across modules.

#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace mvc {

/// Joins the elements of `parts` with `sep`, using operator<< for
/// formatting.
template <typename Container>
std::string JoinToString(const Container& parts, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    os << p;
    first = false;
  }
  return os.str();
}

/// printf-free concatenation: StrCat(1, "-", 2.5) == "1-2.5".
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream os;
  ((void)(os << std::forward<Args>(args)), ...);
  return os.str();
}

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> SplitString(const std::string& s, char delim);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace mvc
