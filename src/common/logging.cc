#include "common/logging.h"

#include <atomic>  // mvc-lint: allow-sync -- log level is read from every runtime thread

namespace mvc {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
  (void)level_;
}

void FatalCheckFailure(const char* file, int line,
                       const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << "[FATAL " << file << ":" << line << "] " << message << "\n";
  }
  std::abort();
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr)
    : file_(file), line_(line) {
  stream_ << expr << " ";
}

FatalMessage::~FatalMessage() {
  FatalCheckFailure(file_, line_, stream_.str());
}

}  // namespace internal
}  // namespace mvc
