#include "common/status.h"

namespace mvc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConsistencyViolation:
      return "ConsistencyViolation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace mvc
