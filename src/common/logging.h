// Minimal leveled logging and check macros.
//
// MVC_CHECK* abort the process on violation: they guard internal
// invariants whose violation indicates a bug, never user error (user
// errors surface as Status).

#pragma once

#include <cstdlib>
#include <iostream>
#include <mutex>  // mvc-lint: allow-sync -- log lines must not interleave across runtime threads
#include <sstream>
#include <string>

namespace mvc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default kWarn so
/// tests and benches stay quiet unless they opt in.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Voidify helper so the macro's conditional has type void.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

[[noreturn]] void FatalCheckFailure(const char* file, int line,
                                    const std::string& message);

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mvc

#define MVC_LOG_INTERNAL(level)                                      \
  (level) < ::mvc::GetLogLevel()                                     \
      ? (void)0                                                      \
      : ::mvc::internal::LogVoidify() &                              \
            ::mvc::internal::LogMessage(level, __FILE__, __LINE__)   \
                .stream()

#define MVC_LOG_DEBUG() MVC_LOG_INTERNAL(::mvc::LogLevel::kDebug)
#define MVC_LOG_INFO() MVC_LOG_INTERNAL(::mvc::LogLevel::kInfo)
#define MVC_LOG_WARN() MVC_LOG_INTERNAL(::mvc::LogLevel::kWarn)
#define MVC_LOG_ERROR() MVC_LOG_INTERNAL(::mvc::LogLevel::kError)

#define MVC_CHECK(cond)                                            \
  (cond) ? (void)0                                                 \
         : ::mvc::internal::LogVoidify() &                         \
               ::mvc::internal::FatalMessage(__FILE__, __LINE__,   \
                                             "Check failed: " #cond) \
                   .stream()

#define MVC_CHECK_EQ(a, b) MVC_CHECK((a) == (b))
#define MVC_CHECK_NE(a, b) MVC_CHECK((a) != (b))
#define MVC_CHECK_LT(a, b) MVC_CHECK((a) < (b))
#define MVC_CHECK_LE(a, b) MVC_CHECK((a) <= (b))
#define MVC_CHECK_GT(a, b) MVC_CHECK((a) > (b))
#define MVC_CHECK_GE(a, b) MVC_CHECK((a) >= (b))

#define MVC_DCHECK(cond) MVC_CHECK(cond)
