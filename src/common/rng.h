// Deterministic pseudo-random number generation.
//
// All randomness in the library (simulated network latencies, workload
// generation) flows through Rng instances constructed from explicit
// seeds, so every scenario is exactly reproducible.

#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace mvc {

/// Seeded Mersenne-Twister wrapper with the handful of draw shapes the
/// library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MVC_DCHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Exponential draw with the given mean (>0).
  double Exponential(double mean) {
    MVC_DCHECK(mean > 0.0);
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  /// Zipf-like skewed index in [0, n): probability of index i is
  /// proportional to 1/(i+1)^theta. theta = 0 degenerates to uniform.
  int64_t Zipf(int64_t n, double theta) {
    MVC_DCHECK(n > 0);
    if (theta <= 0.0) return UniformInt(0, n - 1);
    // Inverse-CDF over precomputed weights would be faster for large n;
    // workloads here use small alphabets so the direct scan is fine.
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    double target = UniformDouble(0.0, total);
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      if (target <= acc) return i;
    }
    return n - 1;
  }

  /// Picks an index according to non-negative weights (not all zero).
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    MVC_DCHECK(total > 0.0);
    double target = UniformDouble(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (target <= acc) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator; used to give each component
  /// its own stream so adding draws in one place does not perturb others.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mvc
