// Result<T>: a value-or-Status holder, the library's replacement for
// exceptions on fallible value-returning paths.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mvc {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Usage:
///   Result<Table> r = catalog.GetTable("R");
///   if (!r.ok()) return r.status();
///   Table& t = *r;
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables
  /// `return Status::NotFound(...);`).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result must not be constructed from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; Status::OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// The held value. Must only be called when ok().
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` if this holds an error.
  T ValueOr(T fallback) && {
    if (ok()) return std::get<T>(std::move(rep_));
    return fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace mvc

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define MVC_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  MVC_ASSIGN_OR_RETURN_IMPL_(                                   \
      MVC_STATUS_CONCAT_(_mvc_result_, __COUNTER__), lhs, rexpr)

#define MVC_STATUS_CONCAT_INNER_(a, b) a##b
#define MVC_STATUS_CONCAT_(a, b) MVC_STATUS_CONCAT_INNER_(a, b)

#define MVC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
