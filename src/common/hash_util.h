// Hash combination helpers (boost::hash_combine style).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mvc {

/// Mixes `value`'s hash into `seed`.
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

template <typename T>
void HashCombineValue(size_t* seed, const T& v) {
  HashCombine(seed, std::hash<T>{}(v));
}

}  // namespace mvc
