// Canned scenarios reproducing the paper's running examples.
//
// Base relations (Example 1 and Examples 2-5):
//   R(A,B), S(B,C), T(C,D), Q(D,E)
// Views:
//   V1 = R JOIN S   on R.B = S.B          (Examples 1-5)
//   V2 = S JOIN T   on S.C = T.C          (Examples 1, 3)
//   V2q = S JOIN T JOIN Q on S.C = T.C, T.D = Q.D   (Examples 2, 4, 5)
//   V3 = Q                                 (Examples 2-5)
//
// R and S live at source "src0", T and Q at source "src1".

#pragma once

#include "common/result.h"
#include "system/config.h"

namespace mvc {

/// Column schemas for R, S, T, Q.
SystemConfig PaperBaseConfig();

/// View definitions.
ViewDefinition PaperV1();       // R |><| S
ViewDefinition PaperV2();       // S |><| T
ViewDefinition PaperV2WithQ();  // S |><| T |><| Q
ViewDefinition PaperV3();       // Q

/// Example 1 / Table 1: initial R={[1,2]}, T={[3,4]}, S and Q empty;
/// single update inserts [2,3] into S. Views V1 and V2.
SystemConfig Table1Scenario();

/// Table 1's update plus a second insert into T from src1 — the smallest
/// scenario where dependent updates originate at different sources, so
/// the two action-list streams into the merge process can race. The
/// schedule explorer's tests and mvc_explore --self-test build on it.
SystemConfig Table1RaceScenario();

/// Example 3's update stream (U1 on S, U2 on Q, U3 on T) over views
/// V1, V2, V3, with initial data making every delta non-empty.
SystemConfig Example3Scenario();

/// Example 5's update stream (U1 on S, U2 on Q, U3 on Q) over views
/// V1, V2q, V3.
SystemConfig Example5Scenario();

}  // namespace mvc
