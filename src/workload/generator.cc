#include "workload/generator.h"

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"

namespace mvc {

namespace {

/// Tracks each relation's simulated contents so deletes and modifies
/// always target live tuples.
class RelationModel {
 public:
  explicit RelationModel(std::string source) : source_(std::move(source)) {}

  const std::string& source() const { return source_; }

  void Insert(const Tuple& t) { rows_.push_back(t); }

  bool HasRows() const { return !rows_.empty(); }

  Tuple TakeRandom(Rng* rng) {
    size_t idx = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(rows_.size()) - 1));
    Tuple t = rows_[idx];
    rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(idx));
    return t;
  }

 private:
  std::string source_;
  std::vector<Tuple> rows_;
};

Tuple RandomTuple(const WorkloadSpec& spec, Rng* rng) {
  return Tuple{Value(rng->UniformInt(0, spec.join_domain - 1)),
               Value(rng->UniformInt(0, spec.value_domain - 1))};
}

}  // namespace

Result<SystemConfig> GenerateScenario(const WorkloadSpec& spec) {
  if (spec.num_sources < 1 || spec.relations_per_source < 1 ||
      spec.num_views < 1) {
    return Status::InvalidArgument("workload spec must be positive");
  }
  if (spec.global_txn_fraction > 0 && spec.num_sources < 2) {
    return Status::InvalidArgument(
        "global transactions need at least two sources");
  }
  Rng rng(spec.seed);
  SystemConfig config;

  // Relations: every relation has a join attribute j and a payload v.
  std::vector<std::string> relations;
  std::map<std::string, RelationModel> models;
  for (int s = 0; s < spec.num_sources; ++s) {
    const std::string source = StrCat("src", s);
    for (int r = 0; r < spec.relations_per_source; ++r) {
      const std::string relation =
          StrCat("R", s * spec.relations_per_source + r);
      relations.push_back(relation);
      config.sources[source].push_back(relation);
      config.schemas[relation] = Schema::AllInt64({"j", "v"});
      models.emplace(relation, RelationModel(source));
    }
  }

  // Initial data.
  for (const std::string& relation : relations) {
    for (int i = 0; i < spec.initial_rows_per_relation; ++i) {
      Tuple t = RandomTuple(spec, &rng);
      config.initial_data[relation].push_back(t);
      models.at(relation).Insert(t);
    }
  }

  // Views: chain equi-joins on j, optional selection on v.
  for (int v = 0; v < spec.num_views; ++v) {
    ViewDefinition def;
    def.name = StrCat("V", v);
    const int width = static_cast<int>(rng.UniformInt(
        1, std::min<int64_t>(spec.max_view_width,
                             static_cast<int64_t>(relations.size()))));
    std::vector<std::string> pool = relations;
    std::vector<Predicate> conjuncts;
    for (int k = 0; k < width; ++k) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
      def.relations.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
      if (k > 0) {
        conjuncts.push_back(Predicate::ColEqCol(
            ColumnRef{def.relations[static_cast<size_t>(k) - 1], "j"},
            ColumnRef{def.relations[static_cast<size_t>(k)], "j"}));
      }
    }
    if (rng.Bernoulli(spec.selection_probability)) {
      const std::string& target = def.relations[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(def.relations.size()) - 1))];
      conjuncts.push_back(Predicate::ColCmpConst(
          CompareOp::kLt, ColumnRef{target, "v"},
          Value(rng.UniformInt(spec.value_domain / 4,
                               spec.value_domain * 3 / 4))));
    }
    def.predicate = Predicate::And(std::move(conjuncts));
    config.views.push_back(std::move(def));
  }

  // Update stream.
  TimeMicros now = 0;
  int64_t next_global = 0;
  for (int t = 0; t < spec.num_transactions; ++t) {
    now += static_cast<TimeMicros>(
        rng.Exponential(static_cast<double>(spec.mean_interarrival)));

    const bool global = rng.Bernoulli(spec.global_txn_fraction);
    const int parts = global ? 2 : 1;
    ++next_global;

    std::set<std::string> used_sources;
    for (int p = 0; p < parts; ++p) {
      // Pick a relation (skewed), for global parts from a fresh source.
      std::string relation;
      for (int attempt = 0; attempt < 64; ++attempt) {
        size_t idx = static_cast<size_t>(
            rng.Zipf(static_cast<int64_t>(relations.size()),
                     spec.relation_skew));
        relation = relations[idx];
        if (!global ||
            used_sources.count(models.at(relation).source()) == 0) {
          break;
        }
      }
      RelationModel& model = models.at(relation);
      used_sources.insert(model.source());

      Injection inj;
      inj.at = now;
      inj.source = model.source();
      if (global) {
        inj.global_txn_id = next_global;
        inj.global_participants = parts;
      }
      for (int u = 0; u < spec.updates_per_transaction; ++u) {
        const double roll = rng.UniformDouble(0.0, 1.0);
        if (roll < spec.delete_fraction && model.HasRows()) {
          inj.updates.push_back(
              Update::Delete(model.source(), relation, model.TakeRandom(&rng)));
        } else if (roll < spec.delete_fraction + spec.modify_fraction &&
                   model.HasRows()) {
          Tuple before = model.TakeRandom(&rng);
          Tuple after = RandomTuple(spec, &rng);
          model.Insert(after);
          inj.updates.push_back(
              Update::Modify(model.source(), relation, before, after));
        } else {
          Tuple t = RandomTuple(spec, &rng);
          model.Insert(t);
          inj.updates.push_back(Update::Insert(model.source(), relation, t));
        }
      }
      config.workload.push_back(std::move(inj));
    }
  }

  config.seed = spec.seed;
  return config;
}

}  // namespace mvc
