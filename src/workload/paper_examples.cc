#include "workload/paper_examples.h"

namespace mvc {

SystemConfig PaperBaseConfig() {
  SystemConfig config;
  config.sources["src0"] = {"R", "S"};
  config.sources["src1"] = {"T", "Q"};
  config.schemas["R"] = Schema::AllInt64({"A", "B"});
  config.schemas["S"] = Schema::AllInt64({"B", "C"});
  config.schemas["T"] = Schema::AllInt64({"C", "D"});
  config.schemas["Q"] = Schema::AllInt64({"D", "E"});
  return config;
}

ViewDefinition PaperV1() {
  ViewDefinition def;
  def.name = "V1";
  def.relations = {"R", "S"};
  def.predicate =
      Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"});
  // Natural-join style output: A, B, C (Table 1).
  def.projection = {ColumnRef{"R", "A"}, ColumnRef{"R", "B"},
                    ColumnRef{"S", "C"}};
  return def;
}

ViewDefinition PaperV2() {
  ViewDefinition def;
  def.name = "V2";
  def.relations = {"S", "T"};
  def.predicate =
      Predicate::ColEqCol(ColumnRef{"S", "C"}, ColumnRef{"T", "C"});
  // Output: B, C, D (Table 1).
  def.projection = {ColumnRef{"S", "B"}, ColumnRef{"S", "C"},
                    ColumnRef{"T", "D"}};
  return def;
}

ViewDefinition PaperV2WithQ() {
  ViewDefinition def;
  def.name = "V2";
  def.relations = {"S", "T", "Q"};
  def.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"S", "C"}, ColumnRef{"T", "C"}),
       Predicate::ColEqCol(ColumnRef{"T", "D"}, ColumnRef{"Q", "D"})});
  def.projection = {ColumnRef{"S", "B"}, ColumnRef{"S", "C"},
                    ColumnRef{"T", "D"}, ColumnRef{"Q", "E"}};
  return def;
}

ViewDefinition PaperV3() {
  ViewDefinition def;
  def.name = "V3";
  def.relations = {"Q"};
  return def;
}

SystemConfig Table1Scenario() {
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}};
  config.initial_data["T"] = {Tuple{3, 4}};
  config.views = {PaperV1(), PaperV2()};

  Injection inj;
  inj.at = 1000;
  inj.source = "src0";
  inj.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  config.workload = {inj};
  return config;
}

SystemConfig Table1RaceScenario() {
  SystemConfig config = Table1Scenario();
  // U2 touches only V2, U1 (the Table 1 update) touches V1 and V2: a
  // schedule that completes U2's row while U1's row still waits on
  // vm-V1's action list probes the SPA ordering gate.
  Injection u2;
  u2.at = 2000;
  u2.source = "src1";
  u2.updates = {Update::Insert("src1", "T", Tuple{3, 9})};
  config.workload.push_back(u2);
  return config;
}

SystemConfig Example3Scenario() {
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}};
  config.initial_data["T"] = {Tuple{3, 4}};
  config.initial_data["Q"] = {Tuple{4, 9}};
  config.views = {PaperV1(), PaperV2(), PaperV3()};

  Injection u1;
  u1.at = 1000;
  u1.source = "src0";
  u1.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  Injection u2;
  u2.at = 2000;
  u2.source = "src1";
  u2.updates = {Update::Insert("src1", "Q", Tuple{5, 7})};
  Injection u3;
  u3.at = 3000;
  u3.source = "src1";
  u3.updates = {Update::Insert("src1", "T", Tuple{3, 6})};
  config.workload = {u1, u2, u3};
  return config;
}

SystemConfig Example5Scenario() {
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}};
  config.initial_data["T"] = {Tuple{3, 4}};
  config.initial_data["Q"] = {Tuple{4, 9}};
  config.views = {PaperV1(), PaperV2WithQ(), PaperV3()};

  Injection u1;
  u1.at = 1000;
  u1.source = "src0";
  u1.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  Injection u2;
  u2.at = 2000;
  u2.source = "src1";
  u2.updates = {Update::Insert("src1", "Q", Tuple{4, 7})};
  Injection u3;
  u3.at = 3000;
  u3.source = "src1";
  u3.updates = {Update::Insert("src1", "Q", Tuple{4, 8})};
  config.workload = {u1, u2, u3};
  return config;
}

}  // namespace mvc
