// Synthetic scenario generation.
//
// The paper has no public workload; these generators produce the
// parameterized families of schemas, view sets, and update streams the
// benchmark harness sweeps (DESIGN.md, experiments P1-P6). All
// randomness derives from the spec's seed, so every scenario is
// reproducible.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "system/config.h"

namespace mvc {

struct WorkloadSpec {
  // --- Layout ---
  int num_sources = 2;
  int relations_per_source = 2;
  /// Views are random chain joins over 1..max_view_width distinct
  /// relations, joined on the shared join attribute.
  int num_views = 4;
  int max_view_width = 3;
  /// Probability a view carries an extra selection conjunct (enables
  /// relevance pruning to bite).
  double selection_probability = 0.5;

  // --- Data ---
  int initial_rows_per_relation = 10;
  /// Domain of the join attribute; smaller = denser joins.
  int64_t join_domain = 10;
  /// Domain of the payload attribute.
  int64_t value_domain = 100;

  // --- Update stream ---
  int num_transactions = 50;
  int updates_per_transaction = 1;
  double delete_fraction = 0.25;
  double modify_fraction = 0.15;
  /// Zipf skew over relations (0 = uniform).
  double relation_skew = 0.0;
  /// Mean inter-arrival time between transactions (exponential).
  TimeMicros mean_interarrival = 1000;
  /// Fraction of transactions that become two-source global
  /// transactions (Section 6.2). Requires num_sources >= 2.
  double global_txn_fraction = 0.0;

  uint64_t seed = 42;
};

/// Builds a full SystemConfig (sources, schemas, initial data, views,
/// workload) from the spec. Maintenance/runtime knobs are left at their
/// defaults for the caller to override.
Result<SystemConfig> GenerateScenario(const WorkloadSpec& spec);

}  // namespace mvc
