// Recording infrastructure for the consistency oracle and the freshness
// metrics.
//
// The recorder taps two streams:
//   * the integrator's numbered transaction stream (the canonical source
//     schedule S = U_1; U_2; ... of Section 2.1), and
//   * the warehouse's commit stream, with a snapshot of every view's
//     contents after each commit (the warehouse state sequence Wseq).
//
// The checker (checker.h) replays the first against the initial source
// state to decide whether the second satisfies the paper's convergence /
// strong-consistency / completeness definitions.

#pragma once

#include <map>
#include <mutex>  // mvc-lint: allow-sync -- concurrent integrator shards on the ThreadRuntime feed one recorder
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/runtime.h"
#include "storage/catalog.h"

namespace mvc {

struct RecordedUpdate {
  UpdateId id = 0;
  SourceTransaction txn;
  TimeMicros numbered_at = 0;
};

struct RecordedCommit {
  ProcessId submitter = kInvalidProcess;
  WarehouseTransaction txn;
  TimeMicros committed_at = 0;
  /// Contents of every warehouse view after this commit (empty when
  /// snapshotting is disabled).
  Catalog view_snapshot;
};

/// Per-update propagation delay: commit time of the first warehouse
/// transaction reflecting the update, minus its numbering time.
struct FreshnessStats {
  int64_t updates_reflected = 0;
  double mean_lag_micros = 0;
  TimeMicros max_lag_micros = 0;

  std::string ToString() const;
};

class ConsistencyRecorder {
 public:
  /// When disabled, commits are still logged but view contents are not
  /// snapshotted (cheap enough for benchmarks; the checker then can only
  /// verify coverage/ordering, not contents).
  explicit ConsistencyRecorder(bool snapshot_views = true)
      : snapshot_views_(snapshot_views) {}

  /// Movable for wiring-time installation (WarehouseSystem::Wire runs
  /// single-threaded, before any observer can fire); the mutex itself
  /// is not moved.
  ConsistencyRecorder(ConsistencyRecorder&& other) noexcept
      : snapshot_views_(other.snapshot_views_),
        updates_(std::move(other.updates_)),
        commits_(std::move(other.commits_)) {}
  ConsistencyRecorder& operator=(ConsistencyRecorder&& other) noexcept {
    snapshot_views_ = other.snapshot_views_;
    updates_ = std::move(other.updates_);
    commits_ = std::move(other.commits_);
    return *this;
  }

  /// Integrator observer (see IntegratorProcess::SetUpdateObserver).
  /// Under sharded ingest several integrator shards call this
  /// concurrently on the ThreadRuntime — the lock makes the append
  /// atomic; the checker reorders by update id anyway, so arrival order
  /// across shards carries no meaning.
  void OnUpdateNumbered(UpdateId id, const SourceTransaction& txn,
                        TimeMicros now) {
    std::lock_guard<std::mutex> lock(updates_mutex_);
    updates_.push_back(RecordedUpdate{id, txn, now});
  }

  /// Warehouse observer (see WarehouseProcess::SetCommitObserver).
  void OnCommit(ProcessId submitter, const WarehouseTransaction& txn,
                const Catalog& views, TimeMicros now) {
    RecordedCommit commit;
    commit.submitter = submitter;
    commit.txn = txn;
    commit.committed_at = now;
    if (snapshot_views_) commit.view_snapshot = views.Clone();
    commits_.push_back(std::move(commit));
  }

  const std::vector<RecordedUpdate>& updates() const { return updates_; }
  const std::vector<RecordedCommit>& commits() const { return commits_; }
  bool snapshots_enabled() const { return snapshot_views_; }

  /// Freshness over all updates reflected by some commit.
  FreshnessStats ComputeFreshness() const;

 private:
  bool snapshot_views_;
  /// Guards updates_ against concurrent shard observers. updates() is
  /// only read after the runtime quiesces, so the accessor stays bare.
  std::mutex updates_mutex_;
  std::vector<RecordedUpdate> updates_;
  std::vector<RecordedCommit> commits_;
};

}  // namespace mvc
