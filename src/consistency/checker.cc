#include "consistency/checker.h"

#include <algorithm>

#include "common/string_util.h"
#include "query/evaluator.h"
#include "query/relevance.h"

namespace mvc {

namespace {

/// Signed multiset replay state for one relation. Updates that are
/// invisible to every view (pruned) never enter the commit chain, so a
/// chain update may legally delete a tuple the replay has not inserted —
/// the tuple is invisible and its count simply goes negative. Only
/// non-positive-count rows are dropped at materialization; by pruning
/// soundness they cannot contribute to any view.
class SignedBag {
 public:
  explicit SignedBag(const Table& initial) : schema_(initial.schema()) {
    initial.ForEachRow([&](const Tuple& t, int64_t c) { counts_[t] += c; });
  }

  void Apply(const TableDelta& delta) {
    for (const DeltaRow& row : delta.rows) {
      counts_[row.tuple] += row.count;
    }
  }

  Table Materialize(const std::string& name) const {
    Table out(name, schema_);
    for (const auto& [tuple, count] : counts_) {
      if (count > 0) MVC_CHECK(out.Insert(tuple, count).ok());
    }
    return out;
  }

 private:
  Schema schema_;
  std::unordered_map<Tuple, int64_t, TupleHash> counts_;
};

/// All relations' signed replay state; materializes into a Catalog for
/// view evaluation.
class SignedBase {
 public:
  explicit SignedBase(const Catalog& initial) {
    for (const std::string& name : initial.TableNames()) {
      bags_.emplace(name, SignedBag(**initial.GetTable(name)));
    }
  }

  void ApplyUpdate(const Update& update) {
    auto it = bags_.find(update.relation);
    if (it == bags_.end()) return;  // relation unused by any view
    it->second.Apply(ViewEvaluator::UpdateToBaseDelta(update));
  }

  Catalog Materialize() const {
    Catalog out;
    for (const auto& [name, bag] : bags_) {
      Table t = bag.Materialize(name);
      MVC_CHECK(out.CreateTable(name, t.schema()).ok());
      Table* dest = *out.GetTable(name);
      t.ForEachRow([&](const Tuple& tuple, int64_t c) {
        MVC_CHECK(dest->Insert(tuple, c).ok());
      });
    }
    return out;
  }

 private:
  std::map<std::string, SignedBag> bags_;
};

}  // namespace

ConsistencyChecker::ConsistencyChecker(std::vector<CheckedView> views,
                                       const Catalog& initial_base,
                                       CheckerOptions options)
    : views_(std::move(views)),
      initial_base_(initial_base),
      options_(options) {}

ConsistencyChecker::ConsistencyChecker(std::vector<const BoundView*> views,
                                       const Catalog& initial_base,
                                       CheckerOptions options)
    : initial_base_(initial_base), options_(options) {
  for (const BoundView* view : views) {
    views_.push_back(CheckedView{view, nullptr});
  }
}

std::string ConsistencyChecker::ViewLabel(ViewId id) const {
  if (options_.registry != nullptr && id >= 0 &&
      static_cast<size_t>(id) < options_.registry->num_views()) {
    return options_.registry->ViewName(id);
  }
  return StrCat("V#", id);
}

std::set<std::string> ConsistencyChecker::RelevantViews(
    const SourceTransaction& txn) const {
  std::set<std::string> rel;
  for (const CheckedView& cv : views_) {
    for (const Update& u : txn.updates) {
      bool relevant = options_.relevance_pruning
                          ? UpdateIsRelevant(*cv.view, u)
                          : cv.view->RelationIndex(u.relation).has_value();
      if (relevant) {
        rel.insert(cv.view->name());
        break;
      }
    }
  }
  return rel;
}

Status ConsistencyChecker::CompareViews(const Catalog& base,
                                        const Catalog& snapshot,
                                        const std::string& context) const {
  TableProviderFn provider = CatalogProvider(&base);
  for (const CheckedView& cv : views_) {
    Result<Table> expected =
        cv.aggregate != nullptr
            ? EvaluateAggregate(*cv.view, *cv.aggregate, provider,
                                cv.view->name())
            : ViewEvaluator::Evaluate(*cv.view, provider);
    MVC_RETURN_IF_ERROR(expected.status());
    MVC_ASSIGN_OR_RETURN(const Table* actual,
                         snapshot.GetTable(cv.view->name()));
    if (!expected->ContentsEqual(*actual)) {
      return Status::ConsistencyViolation(
          StrCat(context, ": view '", cv.view->name(),
                 "' does not reflect the mapped source state.\nExpected:\n",
                 expected->ToString(), "Actual:\n", actual->ToString()));
    }
  }
  return Status::OK();
}

Status ConsistencyChecker::CheckConvergent(
    const ConsistencyRecorder& recorder) const {
  if (!recorder.snapshots_enabled()) {
    return Status::FailedPrecondition(
        "convergence check requires view snapshots");
  }
  if (recorder.commits().empty()) {
    // No commits: converged iff no update affects any view.
    for (const RecordedUpdate& u : recorder.updates()) {
      if (!RelevantViews(u.txn).empty()) {
        return Status::ConsistencyViolation(
            StrCat("update U", u.id,
                   " affects views but the warehouse never committed"));
      }
    }
    return Status::OK();
  }
  SignedBase base(initial_base_);
  for (const RecordedUpdate& u : recorder.updates()) {
    for (const Update& upd : u.txn.updates) base.ApplyUpdate(upd);
  }
  return CompareViews(base.Materialize(),
                      recorder.commits().back().view_snapshot,
                      "final state");
}

Status ConsistencyChecker::CheckChain(const ConsistencyRecorder& recorder,
                                      bool require_single_steps,
                                      bool require_final_coverage) const {
  if (!recorder.snapshots_enabled()) {
    return Status::FailedPrecondition(
        "consistency check requires view snapshots");
  }

  // Index the numbered source schedule. A duplicate update number is a
  // total-order violation on its own: under sharded ingest it means a
  // shard stamped a shard-local epoch without drawing the cross-shard
  // ticket, so two distinct transactions claim the same position in S.
  std::map<UpdateId, const RecordedUpdate*> by_id;
  for (const RecordedUpdate& u : recorder.updates()) {
    auto [it, inserted] = by_id.emplace(u.id, &u);
    if (!inserted) {
      return Status::ConsistencyViolation(StrCat(
          "update number U", u.id, " was issued to two source "
          "transactions (shard ", it->second->txn.shard, " epoch ",
          it->second->txn.shard_epoch, " vs shard ", u.txn.shard,
          " epoch ", u.txn.shard_epoch,
          "): a cross-shard ticket was dropped"));
    }
  }

  // Precompute REL sets for the legality check.
  std::map<UpdateId, std::set<std::string>> rel;
  for (const RecordedUpdate& u : recorder.updates()) {
    rel[u.id] = RelevantViews(u.txn);
  }

  SignedBase base(initial_base_);
  std::set<UpdateId> applied;
  // (view, update) pairs whose action-list delta reached the warehouse —
  // the crash-recovery hazard: a replayed or resynced AL applied twice
  // corrupts the view even when the applied-update chain looks legal.
  std::set<std::pair<ViewId, UpdateId>> applied_pairs;

  // Initial warehouse state must be consistent too, but the recorder only
  // sees commits; tests install exact initial materializations, so start
  // from the first commit.
  for (size_t j = 0; j < recorder.commits().size(); ++j) {
    const RecordedCommit& commit = recorder.commits()[j];
    for (const ActionList& al : commit.txn.actions) {
      std::vector<UpdateId> ids = al.covered;
      if (ids.empty()) ids.push_back(al.update);
      for (UpdateId id : ids) {
        if (!applied_pairs.insert({al.view, id}).second) {
          return Status::ConsistencyViolation(
              StrCat("commit #", j, " applies U", id, " to view ",
                     ViewLabel(al.view),
                     " a second time (duplicate action list across a crash"
                     " or resync boundary)"));
        }
      }
    }
    std::vector<UpdateId> fresh;
    for (UpdateId id : commit.txn.rows) {
      if (applied.count(id) == 0) fresh.push_back(id);
    }
    std::sort(fresh.begin(), fresh.end());

    if (require_single_steps && fresh.size() != 1) {
      return Status::ConsistencyViolation(
          StrCat("commit #", j, " (", commit.txn.ToString(), ") advances by ",
                 fresh.size(), " updates; completeness requires exactly 1"));
    }

    for (UpdateId id : fresh) {
      auto it = by_id.find(id);
      if (it == by_id.end()) {
        return Status::ConsistencyViolation(
            StrCat("commit #", j, " claims unknown update U", id));
      }
      // Legality: every earlier update sharing a view must already be in
      // the chain (otherwise the implied schedule is not equivalent to
      // S: two dependent updates would be reordered).
      for (const auto& [other_id, other_rel] : rel) {
        if (other_id >= id || applied.count(other_id) > 0) continue;
        if (std::find(fresh.begin(), fresh.end(), other_id) != fresh.end() &&
            other_id < id) {
          continue;  // entering in the same commit, ordered by id
        }
        bool overlap = false;
        for (const std::string& v : rel[id]) {
          if (other_rel.count(v) > 0) {
            overlap = true;
            break;
          }
        }
        if (overlap) {
          return Status::ConsistencyViolation(
              StrCat("commit #", j, " applies U", id, " before dependent U",
                     other_id, " (shared view)"));
        }
      }
      // Advance the replayed base state.
      for (const Update& upd : it->second->txn.updates) {
        base.ApplyUpdate(upd);
      }
      applied.insert(id);
    }

    MVC_RETURN_IF_ERROR(CompareViews(
        base.Materialize(), commit.view_snapshot,
        StrCat("commit #", j, " (rows [",
               JoinToString(commit.txn.rows, ","), "])")));
  }

  // Final coverage: every update that affects some view must be applied.
  // Only meaningful at quiescence — a run prefix legitimately has
  // in-flight updates, so CheckPrefix skips this clause.
  if (require_final_coverage) {
    for (const RecordedUpdate& u : recorder.updates()) {
      if (!rel[u.id].empty() && applied.count(u.id) == 0) {
        return Status::ConsistencyViolation(
            StrCat("update U", u.id, " affects views [",
                   JoinToString(rel[u.id], ","),
                   "] but was never reflected at the warehouse"));
      }
    }
  }
  return Status::OK();
}

Status ConsistencyChecker::CheckStrong(
    const ConsistencyRecorder& recorder) const {
  return CheckChain(recorder, /*require_single_steps=*/false,
                    /*require_final_coverage=*/true);
}

Status ConsistencyChecker::CheckComplete(
    const ConsistencyRecorder& recorder) const {
  return CheckChain(recorder, /*require_single_steps=*/true,
                    /*require_final_coverage=*/true);
}

Status ConsistencyChecker::CheckPrefix(const ConsistencyRecorder& recorder,
                                       bool require_single_steps) const {
  return CheckChain(recorder, require_single_steps,
                    /*require_final_coverage=*/false);
}

}  // namespace mvc
