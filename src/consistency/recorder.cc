#include "consistency/recorder.h"

#include <algorithm>
#include <sstream>

namespace mvc {

std::string FreshnessStats::ToString() const {
  std::ostringstream os;
  os << "reflected=" << updates_reflected
     << " mean_lag_us=" << mean_lag_micros << " max_lag_us="
     << max_lag_micros;
  return os.str();
}

FreshnessStats ConsistencyRecorder::ComputeFreshness() const {
  std::map<UpdateId, TimeMicros> numbered_at;
  for (const RecordedUpdate& u : updates_) numbered_at[u.id] = u.numbered_at;

  std::map<UpdateId, TimeMicros> first_reflected;
  for (const RecordedCommit& c : commits_) {
    for (UpdateId id : c.txn.rows) {
      auto [it, inserted] = first_reflected.emplace(id, c.committed_at);
      (void)it;
      (void)inserted;
    }
  }

  FreshnessStats stats;
  double total = 0;
  for (const auto& [id, at] : first_reflected) {
    auto it = numbered_at.find(id);
    if (it == numbered_at.end()) continue;
    TimeMicros lag = at - it->second;
    total += static_cast<double>(lag);
    stats.max_lag_micros = std::max(stats.max_lag_micros, lag);
    ++stats.updates_reflected;
  }
  if (stats.updates_reflected > 0) {
    stats.mean_lag_micros = total / static_cast<double>(stats.updates_reflected);
  }
  return stats;
}

}  // namespace mvc
