// The MVC consistency oracle: decides whether a recorded run satisfies
// the paper's formal definitions (Section 2), generalized the way the
// definitions intend — the warehouse may reflect *any* serializable
// schedule equivalent to the source schedule S, not only S itself
// ("there exists a consistent source state sequence").
//
// Method. Each committed warehouse transaction declares the set of
// updates it folds in (its VUT rows). Cumulatively unioning them gives a
// chain A_1 ⊆ A_2 ⊆ ... of applied-update sets. The run is
//
//   * MVC strongly consistent iff
//       (content)   after every commit, every view's contents equal the
//                   view evaluated over initial-state ∪ {base deltas of
//                   A_j} — i.e. all views reflect one common source
//                   state of an equivalent schedule;
//       (legality)  the chain respects dependent-update order: if two
//                   updates affect a common view, the earlier one never
//                   enters the chain after the later one (this is what
//                   makes the reordered schedule equivalent to S);
//       (final)     after the last commit the chain contains every
//                   update that affects any view, and contents match.
//   * MVC complete iff additionally every commit grows the chain by
//     exactly one update (every source state is walked through).
//   * MVC convergent iff at least the final contents match (intermediate
//     commits unconstrained).
//
// Content checks need view snapshots (recorder constructed with
// snapshot_views = true).

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "consistency/recorder.h"
#include "query/aggregate.h"
#include "query/view_def.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

struct CheckerOptions {
  /// Must match the integrator's relevance_pruning setting so the
  /// oracle computes the same REL sets.
  bool relevance_pruning = true;
  /// Resolves ViewIds in recorded action lists to names for error
  /// messages; diagnostics print "V#<id>" when null.
  const IdRegistry* registry = nullptr;
};

/// One warehouse view as the oracle evaluates it: an SPJ core plus an
/// optional aggregate layered on top.
struct CheckedView {
  const BoundView* view = nullptr;
  const AggregateSpec* aggregate = nullptr;
};

class ConsistencyChecker {
 public:
  /// `views` (and any aggregate specs) must outlive the checker.
  /// `initial_base` holds the initial contents of every base relation
  /// (all sources combined; relation names are globally unique).
  ConsistencyChecker(std::vector<CheckedView> views,
                     const Catalog& initial_base,
                     CheckerOptions options = {});

  /// Convenience for plain SPJ views.
  ConsistencyChecker(std::vector<const BoundView*> views,
                     const Catalog& initial_base,
                     CheckerOptions options = {});

  /// Convergence: the final warehouse state reflects the final source
  /// state.
  Status CheckConvergent(const ConsistencyRecorder& recorder) const;

  /// Strong MVC consistency (content + legality + final), per above.
  Status CheckStrong(const ConsistencyRecorder& recorder) const;

  /// MVC completeness: strong, plus single-update steps covering every
  /// relevant update.
  Status CheckComplete(const ConsistencyRecorder& recorder) const;

  /// Re-entry oracle for the schedule explorer: validates a run *prefix*
  /// (duplicate-AL detection, chain legality, per-commit contents) while
  /// skipping the final-coverage requirement — mid-run, updates that
  /// affect views may simply not have reached the warehouse yet. A
  /// violation reported here is a violation of every extension of the
  /// prefix, which is what makes it usable after every delivery.
  Status CheckPrefix(const ConsistencyRecorder& recorder,
                     bool require_single_steps) const;

 private:
  /// REL of one transaction under the configured relevance test.
  std::set<std::string> RelevantViews(const SourceTransaction& txn) const;

  /// Evaluates every view over `base` and compares with `snapshot`.
  Status CompareViews(const Catalog& base, const Catalog& snapshot,
                      const std::string& context) const;

  Status CheckChain(const ConsistencyRecorder& recorder,
                    bool require_single_steps,
                    bool require_final_coverage) const;

  /// "V#<id>" or the interned name when a registry is configured.
  std::string ViewLabel(ViewId id) const;

  std::vector<CheckedView> views_;
  const Catalog& initial_base_;
  CheckerOptions options_;
};

}  // namespace mvc
