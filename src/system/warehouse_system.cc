#include "system/warehouse_system.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "merge/merge_engine.h"
#include "net/thread_runtime.h"
#include "obs/derived.h"
#include "query/evaluator.h"
#include "viewmgr/complete_vm.h"

namespace mvc {

const char* ManagerKindToString(ManagerKind kind) {
  switch (kind) {
    case ManagerKind::kComplete:
      return "complete";
    case ManagerKind::kStrong:
      return "strong";
    case ManagerKind::kPeriodic:
      return "periodic";
    case ManagerKind::kConvergent:
      return "convergent";
    case ManagerKind::kCompleteN:
      return "complete-N";
  }
  return "?";
}

void WorkloadDriver::OnStart() {
  for (const Injection& inj : workload_) {
    auto it = source_pids_.find(inj.source);
    MVC_CHECK(it != source_pids_.end())
        << "workload references unknown source " << inj.source;
    auto msg = std::make_unique<InjectTxnMsg>();
    msg->updates = inj.updates;
    msg->global_txn_id = inj.global_txn_id;
    msg->global_participants = inj.global_participants;
    SendAfter(it->second, std::move(msg), inj.at);
  }
}

void WorkloadDriver::OnMessage(ProcessId from, MessagePtr msg) {
  (void)from;
  MVC_LOG_ERROR() << "workload driver: unexpected message " << msg->Summary();
}

namespace {

ConsistencyLevel LevelForKind(ManagerKind kind) {
  switch (kind) {
    case ManagerKind::kComplete:
      return ConsistencyLevel::kComplete;
    case ManagerKind::kStrong:
    case ManagerKind::kPeriodic:
    case ManagerKind::kCompleteN:
      return ConsistencyLevel::kStrong;
    case ManagerKind::kConvergent:
      return ConsistencyLevel::kConvergent;
  }
  return ConsistencyLevel::kStrong;
}

}  // namespace

Result<std::unique_ptr<WarehouseSystem>> WarehouseSystem::Build(
    SystemConfig config) {
  auto system = std::unique_ptr<WarehouseSystem>(new WarehouseSystem());
  MVC_RETURN_IF_ERROR(system->Wire(std::move(config)));
  return system;
}

Status WarehouseSystem::Wire(SystemConfig config) {
  config_ = std::move(config);
  recorder_ = ConsistencyRecorder(config_.record_snapshots);

  // --- Scale-out ingest validation ---
  if (config_.ingest.num_shards < 1) {
    return Status::InvalidArgument("ingest.num_shards must be >= 1");
  }
  if (config_.ingest.num_shards > 1) {
    if (config_.sequential_baseline) {
      return Status::InvalidArgument(
          "sharded ingest requires the Figure 1 architecture, not the "
          "sequential baseline");
    }
    if (config_.fault.enabled()) {
      return Status::InvalidArgument(
          "sharded ingest is incompatible with fault injection: replay "
          "and resync requests assume a single retained update stream");
    }
  }
  if (config_.ingest.group_commit.enabled) {
    if (config_.ingest.group_commit.max_batch < 1) {
      return Status::InvalidArgument(
          "ingest.group_commit.max_batch must be >= 1");
    }
    if (config_.warehouse.legacy_clone_history) {
      return Status::InvalidArgument(
          "group commit batches store versions; the legacy clone ring "
          "serves unbatched per-transaction states — pick one");
    }
  }
  // The warehouse reads the group-commit bounds from its own options.
  config_.warehouse.group_commit = config_.ingest.group_commit;

  // --- Self-maintenance validation ---
  if (config_.maint.self_maintain) {
    if (config_.sequential_baseline) {
      return Status::InvalidArgument(
          "self-maintenance requires the Figure 1 architecture, not the "
          "sequential baseline");
    }
    if (config_.fault.enabled()) {
      return Status::InvalidArgument(
          "self-maintenance is incompatible with fault injection: replay "
          "and checkpointing assume one manager per view");
    }
    if (config_.integrator.piggyback_rel) {
      return Status::InvalidArgument(
          "self-maintenance requires direct REL delivery; disable "
          "integrator.piggyback_rel");
    }
    if (!config_.aggregates.empty()) {
      return Status::InvalidArgument(
          "self-maintenance does not cover aggregate views yet; drop "
          "maint.self_maintain or the aggregates");
    }
    for (const auto& [view, kind] : config_.manager_kinds) {
      if (kind != ManagerKind::kComplete) {
        return Status::InvalidArgument(StrCat(
            "self-maintaining managers emit complete-level action lists; "
            "view '", view, "' asks for ", ManagerKindToString(kind)));
      }
    }
  }

  // Observability hubs. Both exist when either flag is set: the derived
  // latency/staleness histograms live in the registry but are computed
  // from the trace, so metrics without a trace would silently miss the
  // headline numbers.
  if (config_.collect_metrics || config_.collect_trace) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    tracer_ = std::make_unique<obs::Tracer>();
  }

  if (config_.fault.enabled()) {
    if (config_.fault.checkpoint_every <= 0) {
      return Status::InvalidArgument(
          StrCat("fault.checkpoint_every must be positive, got ",
                 config_.fault.checkpoint_every));
    }
    if (config_.sequential_baseline) {
      return Status::InvalidArgument(
          "fault injection requires the Figure 1 architecture, not the "
          "sequential baseline");
    }
    if (config_.integrator.piggyback_rel) {
      return Status::InvalidArgument(
          "fault injection requires direct REL delivery; disable "
          "integrator.piggyback_rel");
    }
    for (const auto& [view, kind] : config_.manager_kinds) {
      if (kind == ManagerKind::kConvergent) {
        return Status::InvalidArgument(StrCat(
            "fault injection is incompatible with the convergent manager "
            "for view '", view, "': convergent managers re-emit action "
            "lists under a repeated label, which defeats replay "
            "deduplication"));
      }
    }
    // Recovering view managers and merge processes pull the missed tail
    // of the numbered update stream back out of the integrator.
    config_.integrator.retain_for_replay = true;
  }

  // --- Initial base state ---
  std::map<std::string, std::string> relation_source;
  for (const auto& [source, relations] : config_.sources) {
    for (const std::string& relation : relations) {
      if (!relation_source.emplace(relation, source).second) {
        return Status::InvalidArgument(
            StrCat("relation '", relation, "' hosted by several sources"));
      }
    }
  }
  for (const auto& [relation, schema] : config_.schemas) {
    if (relation_source.count(relation) == 0) {
      return Status::InvalidArgument(
          StrCat("relation '", relation, "' is not hosted by any source"));
    }
    MVC_RETURN_IF_ERROR(initial_base_.CreateTable(relation, schema));
    auto data = config_.initial_data.find(relation);
    if (data != config_.initial_data.end()) {
      MVC_ASSIGN_OR_RETURN(Table * table, initial_base_.GetTable(relation));
      for (const Tuple& t : data->second) {
        MVC_RETURN_IF_ERROR(table->Insert(t));
      }
    }
  }

  // --- Bind views ---
  bound_views_.reserve(config_.views.size());
  for (const ViewDefinition& def : config_.views) {
    MVC_ASSIGN_OR_RETURN(BoundView bound,
                         BoundView::Bind(def, config_.schemas));
    bound_views_.push_back(std::move(bound));
  }

  // --- Intern identities ---
  // Every id is minted here, before any process is constructed; from now
  // on the registry is read-only, so processes on any runtime may share
  // it. Views get ids in config order, relations in schema-map (name)
  // order.
  for (const BoundView& view : bound_views_) {
    registry_.InternView(view.name());
  }
  for (const auto& [relation, schema] : config_.schemas) {
    registry_.InternRelation(relation);
  }

  // ActionList::covered is only materialized when something downstream
  // actually reads it: piggybacked REL delivery (out-of-order REL
  // arrival), the consistency oracle (per-AL dedup), or crash recovery
  // (replay dedup). Plain release runs ship lean ALs carrying only the
  // [first_update, update] label range.
  config_.vm_options.collect_covered = config_.integrator.piggyback_rel ||
                                       config_.record_snapshots ||
                                       config_.fault.enabled();

  // --- Runtime ---
  if (config_.runtime_factory) {
    runtime_ = config_.runtime_factory(config_);
    MVC_CHECK(runtime_ != nullptr);
  } else if (config_.use_threads) {
    runtime_ = std::make_unique<ThreadRuntime>(config_.seed, config_.latency);
  } else {
    runtime_ = std::make_unique<SimRuntime>(config_.seed, config_.latency);
  }

  // --- Sources ---
  std::map<std::string, ProcessId> source_pids;
  for (const auto& [name, relations] : config_.sources) {
    auto source = std::make_unique<SourceProcess>(name,
                                                  config_.source_options);
    for (const std::string& relation : relations) {
      auto schema = config_.schemas.find(relation);
      if (schema == config_.schemas.end()) {
        return Status::InvalidArgument(
            StrCat("relation '", relation, "' has no schema"));
      }
      MVC_RETURN_IF_ERROR(source->CreateTable(relation, schema->second));
      auto data = config_.initial_data.find(relation);
      if (data != config_.initial_data.end()) {
        for (const Tuple& t : data->second) {
          MVC_RETURN_IF_ERROR(source->LoadInitial(relation, t));
        }
      }
    }
    source->SetRegistry(&registry_);
    source->EnableObservability(metrics_.get(), tracer_.get());
    source_pids[name] = runtime_->Register(source.get());
    sources_.push_back(std::move(source));
  }

  // --- Warehouse ---
  warehouse_ = std::make_unique<WarehouseProcess>("warehouse",
                                                  config_.warehouse);
  TableProviderFn initial_provider = CatalogProvider(&initial_base_);
  for (const BoundView& view : bound_views_) {
    auto agg = config_.aggregates.find(view.name());
    if (agg != config_.aggregates.end()) {
      MVC_ASSIGN_OR_RETURN(Schema agg_schema,
                           agg->second.OutputSchema(view.output_schema()));
      MVC_RETURN_IF_ERROR(warehouse_->CreateView(view.name(), agg_schema));
      MVC_ASSIGN_OR_RETURN(
          Table initial,
          EvaluateAggregate(view, agg->second, initial_provider,
                            view.name()));
      MVC_RETURN_IF_ERROR(warehouse_->InitializeView(view.name(), initial));
      continue;
    }
    MVC_RETURN_IF_ERROR(
        warehouse_->CreateView(view.name(), view.output_schema()));
    MVC_ASSIGN_OR_RETURN(Table initial,
                         ViewEvaluator::Evaluate(view, initial_provider));
    MVC_RETURN_IF_ERROR(warehouse_->InitializeView(view.name(), initial));
  }
  warehouse_->SetRegistry(&registry_);
  if (metrics_ != nullptr) {
    warehouse_->EnableObservability(metrics_.get());
  }
  const ProcessId warehouse_pid = runtime_->Register(warehouse_.get());

  // --- Background compactor (src/compact/) ---
  if (config_.compaction.enabled) {
    compactor_ =
        std::make_unique<CompactorProcess>("compactor", config_.compaction);
    if (metrics_ != nullptr) {
      compactor_->EnableObservability(metrics_.get());
    }
    const ProcessId compactor_pid = runtime_->Register(compactor_.get());
    compactor_->SetWarehouse(warehouse_pid);
    warehouse_->SetCompactor(compactor_pid,
                             config_.compaction.stats_every_commits,
                             config_.compaction.max_version_detail);
  }

  obs::Counter* wh_commits = nullptr;
  obs::Histogram* wh_txn_rows = nullptr;
  if (metrics_ != nullptr) {
    wh_commits = metrics_->RegisterCounter("warehouse.commits");
    wh_txn_rows = metrics_->RegisterHistogram("warehouse.txn_rows", "rows");
  }
  warehouse_->SetCommitObserver(
      [this, wh_commits, wh_txn_rows](ProcessId submitter,
                                      const WarehouseTransaction& txn,
                                      const Catalog& views, TimeMicros now) {
        recorder_.OnCommit(submitter, txn, views, now);
        if (wh_commits != nullptr) {
          wh_commits->Add();
          wh_txn_rows->Record(static_cast<int64_t>(txn.rows.size()));
        }
        if (tracer_ != nullptr) {
          for (UpdateId row : txn.rows) {
            tracer_->Record(obs::Span{obs::SpanKind::kCommitted, row,
                                      kInvalidView, txn.txn_id, submitter,
                                      now, "warehouse"});
          }
          // One reflection span per (view, covered update): the commit
          // makes each action list's updates visible in its view.
          for (const ActionList& al : txn.actions) {
            if (al.covered.empty()) {
              for (UpdateId u = al.first_update; u <= al.update; ++u) {
                tracer_->Record(obs::Span{obs::SpanKind::kViewReflected, u,
                                          al.view, txn.txn_id, 0, now,
                                          "warehouse"});
              }
            } else {
              for (UpdateId u : al.covered) {
                tracer_->Record(obs::Span{obs::SpanKind::kViewReflected, u,
                                          al.view, txn.txn_id, 0, now,
                                          "warehouse"});
              }
            }
          }
        }
      });

  if (config_.sequential_baseline) {
    // --- Section 1.1 strawman wiring ---
    sequential_ = std::make_unique<SequentialIntegrator>(
        "sequential-integrator", config_.sequential);
    for (const BoundView& view : bound_views_) {
      MVC_RETURN_IF_ERROR(
          sequential_->RegisterView(&view, *registry_.FindView(view.name())));
    }
    for (const auto& [relation, schema] : config_.schemas) {
      MVC_ASSIGN_OR_RETURN(const Table* initial,
                           initial_base_.GetTable(relation));
      MVC_RETURN_IF_ERROR(
          sequential_->RegisterBaseRelation(relation, schema, initial));
    }
    const ProcessId seq_pid = runtime_->Register(sequential_.get());
    sequential_->SetWarehouse(warehouse_pid);
    sequential_->SetUpdateObserver(
        [this](UpdateId id, const SourceTransaction& txn) {
          recorder_.OnUpdateNumbered(id, txn, runtime_->Now());
        });
    for (auto& source : sources_) source->SetIntegrator(seq_pid);
  } else {
    // --- Figure 1 wiring ---
    std::vector<const BoundView*> view_ptrs;
    for (const BoundView& view : bound_views_) view_ptrs.push_back(&view);
    // ingest.fanout_merge: one merge process per relation-disjoint view
    // group (the exact Section 6.1 partition), rather than balancing
    // into a fixed process budget.
    groups_ = config_.ingest.fanout_merge
                  ? PartitionViews(view_ptrs)
                  : PartitionViewsInto(view_ptrs,
                                       config_.num_merge_processes);

    // Merge processes (one per group).
    std::map<std::string, ProcessId> merge_of_view;
    for (size_t g = 0; g < groups_.size(); ++g) {
      MergeOptions options = config_.merge;
      if (config_.auto_algorithm) {
        std::vector<uint8_t> levels;
        for (const std::string& view : groups_[g].views) {
          if (config_.aggregates.count(view) > 0) {
            levels.push_back(
                static_cast<uint8_t>(ConsistencyLevel::kStrong));
            continue;
          }
          ManagerKind kind = ManagerKind::kComplete;
          auto it = config_.manager_kinds.find(view);
          if (it != config_.manager_kinds.end()) kind = it->second;
          levels.push_back(static_cast<uint8_t>(LevelForKind(kind)));
        }
        options.algorithm = AlgorithmForLevels(levels);
      }
      auto merge = std::make_unique<MergeProcess>(
          StrCat("merge-", g), registry_.InternViews(groups_[g].views),
          &registry_, options);
      ProcessId merge_pid = runtime_->Register(merge.get());
      merge->SetWarehouse(warehouse_pid);
      merge->EnableObservability(metrics_.get(), tracer_.get());
      for (const std::string& view : groups_[g].views) {
        merge_of_view[view] = merge_pid;
      }
      merges_.push_back(std::move(merge));
    }

    // View managers: either one self-maintaining manager per merge
    // group (maint.self_maintain), or one per-view manager.
    std::map<std::string, ProcessId> vm_of_view;
    if (config_.maint.self_maintain) {
      std::map<std::string, const BoundView*> view_by_name;
      for (const BoundView& view : bound_views_) {
        view_by_name[view.name()] = &view;
      }
      // Auxiliary relation ids are minted here, per group, still before
      // the runtime starts — after this loop the registry is read-only
      // again.
      size_t aux_name_offset = 0;
      for (size_t g = 0; g < groups_.size(); ++g) {
        SelfMaintainingVmOptions options;
        options.delta_cost = config_.vm_options.delta_cost;
        options.per_al_cost = config_.vm_options.per_al_cost;
        options.collect_covered = config_.vm_options.collect_covered;
        options.relevance_pruning = config_.integrator.relevance_pruning;
        options.mutation_skip_aux_apply =
            config_.maint.mutation_skip_aux_apply;
        auto vm = std::make_unique<SelfMaintainingVm>(StrCat("maint-", g),
                                                      options);
        for (const std::string& view_name : groups_[g].views) {
          vm->AddView(view_by_name.at(view_name),
                      *registry_.FindView(view_name));
        }
        MVC_RETURN_IF_ERROR(
            vm->Initialize(initial_base_, aux_name_offset, &registry_));
        aux_name_offset += vm->aux_plan().auxiliaries.size();
        const ProcessId pid = runtime_->Register(vm.get());
        for (const std::string& view_name : groups_[g].views) {
          vm_of_view[view_name] = pid;
        }
        vm->SetMerge(merge_of_view.at(groups_[g].views.front()));
        vm->EnableObservability(metrics_.get(), tracer_.get());
        maint_vms_.push_back(std::move(vm));
      }
    } else {
    for (const BoundView& view : bound_views_) {
      ManagerKind kind = ManagerKind::kComplete;
      auto kind_it = config_.manager_kinds.find(view.name());
      if (kind_it != config_.manager_kinds.end()) kind = kind_it->second;
      std::unique_ptr<ViewManagerBase> vm;
      const std::string vm_name = StrCat("vm-", view.name());
      auto agg_it = config_.aggregates.find(view.name());
      if (agg_it != config_.aggregates.end()) {
        AggregateViewManagerOptions options = config_.aggregate_options;
        options.base = config_.vm_options;
        vm = std::make_unique<AggregateViewManager>(vm_name, &view,
                                                    agg_it->second, options);
      } else {
      switch (kind) {
        case ManagerKind::kComplete:
          vm = std::make_unique<CompleteViewManager>(vm_name, &view,
                                                     config_.vm_options);
          break;
        case ManagerKind::kStrong: {
          StrongViewManagerOptions options = config_.strong_options;
          options.base = config_.vm_options;
          vm = std::make_unique<StrongViewManager>(vm_name, &view, options);
          break;
        }
        case ManagerKind::kCompleteN: {
          StrongViewManagerOptions options = config_.strong_options;
          options.base = config_.vm_options;
          options.min_batch = config_.complete_n;
          options.max_batch = config_.complete_n;
          if (options.flush_timeout == 0) options.flush_timeout = 100000;
          vm = std::make_unique<StrongViewManager>(vm_name, &view, options);
          break;
        }
        case ManagerKind::kPeriodic: {
          PeriodicViewManagerOptions options = config_.periodic_options;
          options.base = config_.vm_options;
          vm = std::make_unique<PeriodicViewManager>(vm_name, &view, options);
          break;
        }
        case ManagerKind::kConvergent: {
          ConvergentViewManagerOptions options = config_.convergent_options;
          options.base = config_.vm_options;
          vm = std::make_unique<ConvergentViewManager>(vm_name, &view,
                                                       options);
          break;
        }
      }
      }
      vm->SetViewId(*registry_.FindView(view.name()));
      for (size_t r = 0; r < view.num_relations(); ++r) {
        const std::string& relation = view.relation(r);
        MVC_ASSIGN_OR_RETURN(const Table* initial,
                             initial_base_.GetTable(relation));
        MVC_RETURN_IF_ERROR(vm->RegisterBaseRelation(
            relation, config_.schemas.at(relation), initial));
        vm->SetSourceForRelation(relation, *registry_.FindRelation(relation),
                                 source_pids.at(relation_source.at(relation)));
      }
      vm_of_view[view.name()] = runtime_->Register(vm.get());
      vm->SetMerge(merge_of_view.at(view.name()));
      vm->EnableObservability(metrics_.get(), tracer_.get());
      view_managers_.push_back(std::move(vm));
    }
    }

    // Section 6.1 x 6.2 interaction: a transaction whose updates span
    // two *disjoint* merge groups cannot be applied atomically (each
    // group commits independently), so such workloads are rejected up
    // front rather than silently violating MVC. Relation-level
    // relevance keeps the check conservative.
    {
      std::map<std::string, size_t> group_of_relation;
      for (size_t g = 0; g < groups_.size(); ++g) {
        for (const std::string& rel : groups_[g].relations) {
          group_of_relation[rel] = g;
        }
      }
      // Atomic units: plain injections, or all parts of a global txn.
      std::map<int64_t, std::set<size_t>> global_groups;
      for (const Injection& inj : config_.workload) {
        std::set<size_t> touched;
        for (const Update& u : inj.updates) {
          auto it = group_of_relation.find(u.relation);
          if (it != group_of_relation.end()) touched.insert(it->second);
        }
        if (inj.global_txn_id != 0) {
          auto& acc = global_groups[inj.global_txn_id];
          acc.insert(touched.begin(), touched.end());
          touched = acc;
        }
        if (touched.size() > 1) {
          return Status::InvalidArgument(StrCat(
              "a transaction at t=", inj.at, " spans ", touched.size(),
              " disjoint merge groups; cross-group transactions cannot be "
              "applied atomically — use fewer merge processes or keep "
              "transactions within one view group"));
        }
      }
    }

    // Integrator (possibly sharded). The shard plan co-locates every
    // source hosting one merge group's relations — and all participants
    // of each global transaction — on a single shard, so each view
    // manager and merge process receives its whole stream over one FIFO
    // channel, in cross-shard ticket order.
    if (config_.ingest.num_shards > 1) {
      std::vector<std::vector<std::string>> co_located;
      std::map<int64_t, std::set<std::string>> global_sources;
      for (const Injection& inj : config_.workload) {
        if (inj.global_txn_id != 0) {
          global_sources[inj.global_txn_id].insert(inj.source);
        }
      }
      for (const auto& [id, srcs] : global_sources) {
        co_located.emplace_back(srcs.begin(), srcs.end());
      }
      shard_plan_ = PlanIntegratorShards(config_.sources, groups_,
                                         co_located,
                                         config_.ingest.num_shards);
      ticketer_ = std::make_unique<CrossShardTicketer>();
    } else {
      shard_plan_.num_shards = 1;
      for (const auto& [name, relations] : config_.sources) {
        shard_plan_.shard_of_source[name] = 0;
      }
    }
    const size_t num_shards = std::max<size_t>(shard_plan_.num_shards, 1);
    std::vector<ProcessId> shard_pids;
    for (size_t s = 0; s < num_shards; ++s) {
      // Shard 0 keeps the legacy process name so traces and tests that
      // key on "integrator" read the same in both modes.
      auto shard = std::make_unique<IntegratorProcess>(
          s == 0 ? std::string("integrator") : StrCat("integrator-", s),
          config_.integrator);
      if (ticketer_ != nullptr) {
        shard->SetShard(static_cast<int32_t>(s), ticketer_.get());
        // The merges this shard owns: each group's relations are hosted
        // entirely within one shard's sources by construction.
        std::vector<ProcessId> owned;
        for (const ViewGroup& group : groups_) {
          const std::string& any_rel = group.relations.front();
          if (shard_plan_.ShardOf(relation_source.at(any_rel)) == s) {
            owned.push_back(merge_of_view.at(group.views.front()));
          }
        }
        shard->SetBroadcastMerges(std::move(owned));
      }
      shard_pids.push_back(runtime_->Register(shard.get()));
      for (const BoundView& view : bound_views_) {
        MVC_RETURN_IF_ERROR(shard->RegisterView(
            &view, *registry_.FindView(view.name()),
            vm_of_view.at(view.name()), merge_of_view.at(view.name())));
      }
      shard->SetUpdateObserver(
          [this](UpdateId id, const SourceTransaction& txn) {
            recorder_.OnUpdateNumbered(id, txn, runtime_->Now());
          });
      shard->EnableObservability(metrics_.get(), tracer_.get());
      integrator_shards_.push_back(std::move(shard));
    }
    for (auto& source : sources_) {
      source->SetIntegrator(
          shard_pids[shard_plan_.ShardOf(source->name())]);
    }
    const ProcessId integrator_pid = shard_pids.front();

    // Fault tolerance: durable stores, recovery wiring, and the injector.
    if (config_.fault.enabled()) {
      checkpoint_store_ = std::make_unique<CheckpointStore>();
      for (auto& vm : view_managers_) {
        vm->EnableFaultTolerance(checkpoint_store_.get(),
                                 config_.fault.checkpoint_every,
                                 integrator_pid);
      }
      for (size_t g = 0; g < groups_.size(); ++g) {
        auto log = std::make_unique<MergeLog>();
        std::map<ViewId, ProcessId> group_vms;
        for (const std::string& view : groups_[g].views) {
          group_vms[*registry_.FindView(view)] = vm_of_view.at(view);
        }
        merges_[g]->EnableFaultTolerance(log.get(), integrator_pid,
                                         std::move(group_vms),
                                         config_.fault);
        merge_logs_.push_back(std::move(log));
      }
      std::map<std::string, ProcessId> targets;
      for (const auto& vm : view_managers_) targets[vm->name()] = vm->id();
      for (const auto& merge : merges_) {
        targets[merge->name()] = merge->id();
      }
      for (const FaultEvent& ev : config_.fault.plan.events) {
        if (targets.count(ev.target) == 0) {
          std::vector<std::string> known;
          for (const auto& [name, pid] : targets) known.push_back(name);
          return Status::InvalidArgument(
              StrCat("fault target '", ev.target,
                     "' is not a crashable process; known targets: ",
                     JoinToString(known, ", ")));
        }
      }
      fault_injector_ = std::make_unique<FaultInjectorProcess>(
          config_.fault.plan, std::move(targets));
      runtime_->Register(fault_injector_.get());
    }
  }

  // --- Workload driver ---
  std::vector<Injection> workload = config_.workload;
  std::stable_sort(workload.begin(), workload.end(),
                   [](const Injection& a, const Injection& b) {
                     return a.at < b.at;
                   });
  driver_ = std::make_unique<WorkloadDriver>("driver", std::move(workload),
                                             source_pids);
  runtime_->Register(driver_.get());

  // --- Config-driven readers (the explorer's only way to get reads
  // into the schedule: it rebuilds the system from the config alone) ---
  if (config_.attach_readers) {
    AttachReaderPool(config_.readers);
  }
  return Status::OK();
}

void WarehouseSystem::Run() {
  runtime_->Run();
  FinalizeObservability();
}

void WarehouseSystem::FinalizeObservability() {
  if (obs_finalized_ || metrics_ == nullptr) return;
  obs_finalized_ = true;
  // End-of-run engine levels. The PA engine is excluded from the live
  // promptness scan, so a non-zero end gauge here is the coarse-grained
  // check that every merge drained its holds.
  for (const auto& merge : merges_) {
    const std::string l = StrCat("{process=\"", merge->name(), "\"}");
    metrics_->RegisterGauge(StrCat("merge.end_held_action_lists", l))
        ->Set(static_cast<int64_t>(merge->engine().held_action_lists()));
    metrics_->RegisterGauge(StrCat("merge.end_open_rows", l))
        ->Set(static_cast<int64_t>(merge->engine().open_rows()));
  }
  obs::ComputeDerivedMetrics(tracer_->Snapshot(), &registry_,
                             metrics_.get());
}

obs::MetricsSnapshot WarehouseSystem::MetricsSnapshot() const {
  if (metrics_ == nullptr) return {};
  return metrics_->Snapshot();
}

std::vector<obs::Span> WarehouseSystem::TraceSnapshot() const {
  if (tracer_ == nullptr) return {};
  return tracer_->Snapshot();
}

WarehouseReader* WarehouseSystem::AttachReader(
    std::vector<std::string> views, std::vector<TimeMicros> read_at,
    const ReaderQueryOptions* query, uint64_t query_seed) {
  const bool query_mode = query != nullptr && query->enabled;
  // Names resolve to ids here, at the ingest boundary; the reader's
  // messages carry ids only. The query workload needs an explicit view
  // alphabet for its popularity distribution, so "all views" resolves
  // eagerly there.
  std::vector<ViewId> ids;
  if (views.empty() && query_mode) {
    for (size_t v = 0; v < registry_.num_views(); ++v) {
      ids.push_back(static_cast<ViewId>(v));
    }
  }
  for (const std::string& view : views) {
    std::optional<ViewId> id = registry_.FindView(view);
    MVC_CHECK(id.has_value()) << "reader references unknown view " << view;
    ids.push_back(*id);
  }
  auto reader = std::make_unique<WarehouseReader>(
      StrCat("reader-", readers_.size()), std::move(ids),
      std::move(read_at));
  runtime_->Register(reader.get());
  reader->SetWarehouse(warehouse_->id());
  if (query_mode) reader->SetQueryOptions(*query, query_seed);
  reader->EnableObservability(metrics_.get());
  readers_.push_back(std::move(reader));
  return readers_.back().get();
}

std::vector<WarehouseReader*> WarehouseSystem::AttachReaderPool(
    const ReaderPoolOptions& options) {
  std::vector<WarehouseReader*> pool;
  pool.reserve(options.num_readers);
  Rng root(options.seed);
  for (size_t r = 0; r < options.num_readers; ++r) {
    Rng stream = root.Fork();
    pool.push_back(AttachReader(
        options.views,
        PoissonReadSchedule(stream.engine()(), options.reads_per_reader,
                            options.mean_interval_us, options.start),
        &options.query, stream.engine()()));
  }
  return pool;
}

ConsistencyChecker WarehouseSystem::MakeChecker() const {
  std::vector<CheckedView> views;
  for (const BoundView& view : bound_views_) {
    auto agg = config_.aggregates.find(view.name());
    views.push_back(CheckedView{
        &view, agg == config_.aggregates.end() ? nullptr : &agg->second});
  }
  CheckerOptions options;
  options.relevance_pruning = config_.sequential_baseline
                                  ? false
                                  : config_.integrator.relevance_pruning;
  options.registry = &registry_;
  return ConsistencyChecker(std::move(views), initial_base_, options);
}

}  // namespace mvc
