// Scenario configuration for a complete warehouse system run.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compact/compactor_process.h"
#include "fault/fault_plan.h"
#include "integrator/integrator.h"
#include "integrator/ticketer.h"
#include "integrator/sequential_integrator.h"
#include "merge/merge_process.h"
#include "query/aggregate.h"
#include "net/sim_runtime.h"
#include "source/source_process.h"
#include "storage/schema.h"
#include "storage/update.h"
#include "viewmgr/aggregate_vm.h"
#include "viewmgr/convergent_vm.h"
#include "viewmgr/periodic_vm.h"
#include "viewmgr/strong_vm.h"
#include "warehouse/reader.h"
#include "warehouse/warehouse.h"

namespace mvc {

/// Which view-manager implementation maintains a view.
enum class ManagerKind : uint8_t {
  kComplete = 0,
  kStrong = 1,
  kPeriodic = 2,
  kConvergent = 3,
  kCompleteN = 4,  // StrongViewManager with fixed batch bounds
};

const char* ManagerKindToString(ManagerKind kind);

/// Scale-out ingest (ROADMAP item 2): sharded integrator, exact merge
/// fan-out, and group commit at the warehouse.
struct IngestConfig {
  /// Upper bound on integrator shards. Sources are clustered so that
  /// every merge group's sources share a shard (see
  /// PlanIntegratorShards); the effective shard count is therefore
  /// min(num_shards, independent source clusters). 1 keeps the single
  /// global sequencer, byte-for-byte the legacy behavior.
  size_t num_shards = 1;
  /// Use the exact relation-disjoint partition — one MergeProcess per
  /// disjoint view group — instead of balancing into
  /// SystemConfig::num_merge_processes groups.
  bool fanout_merge = false;
  /// Batch independent transactions into one versioned-store commit at
  /// the warehouse (see GroupCommitOptions in warehouse.h).
  GroupCommitOptions group_commit;
};

/// Self-maintenance with shared delta plans (ROADMAP item 3, src/maint/):
/// replace the per-view managers with one SelfMaintainingVm per merge
/// group that maintains every view of the group from auxiliary views,
/// factoring common delta subexpressions across the view set.
struct MaintConfig {
  /// Maintain all views through self-maintaining group managers. The
  /// emitted action lists are byte-identical to the per-view complete
  /// managers' (one AL per relevant update per view), so everything
  /// downstream of the view managers is unchanged. Incompatible with
  /// per-view manager_kinds, aggregates, fault injection, piggybacked
  /// REL delivery, and the sequential baseline.
  bool self_maintain = false;
  /// Test-only mutation: skip the Nth effective auxiliary apply
  /// (1-based), leaving the auxiliary store stale — the consistency
  /// checker must catch the resulting divergence (explorer self-test).
  int64_t mutation_skip_aux_apply = 0;
};

/// One transaction injected into a source at a simulated time.
struct Injection {
  TimeMicros at = 0;
  std::string source;
  std::vector<Update> updates;
  int64_t global_txn_id = 0;
  int32_t global_participants = 0;
};

struct SystemConfig {
  // --- Data layout ---
  /// Source name -> relations it hosts. Relation names must be globally
  /// unique.
  std::map<std::string, std::vector<std::string>> sources;
  /// Relation -> schema.
  std::map<std::string, Schema> schemas;
  /// Relation -> initial tuples (state ss_0).
  std::map<std::string, std::vector<Tuple>> initial_data;
  /// The warehouse views.
  std::vector<ViewDefinition> views;
  /// Views that are aggregates over their SPJ core (keyed by view name,
  /// which must appear in `views`). Such views are maintained by an
  /// AggregateViewManager regardless of manager_kinds.
  std::map<std::string, AggregateSpec> aggregates;
  AggregateViewManagerOptions aggregate_options;

  // --- Maintenance configuration ---
  /// Per-view manager kind; views absent from the map use kComplete.
  std::map<std::string, ManagerKind> manager_kinds;
  ViewManagerOptions vm_options;
  StrongViewManagerOptions strong_options;
  PeriodicViewManagerOptions periodic_options;
  ConvergentViewManagerOptions convergent_options;
  /// Batch size for kCompleteN managers.
  size_t complete_n = 2;

  IntegratorOptions integrator;
  MergeOptions merge;
  /// Derive each merge process's algorithm from the weakest manager in
  /// its group instead of using merge.algorithm.
  bool auto_algorithm = true;
  /// Number of merge processes (distributed merge, Section 6.1). Views
  /// are partitioned by shared base relations, then balanced into at
  /// most this many groups. Ignored when ingest.fanout_merge is set.
  size_t num_merge_processes = 1;
  /// Scale-out ingest: integrator sharding, merge fan-out, group commit.
  IngestConfig ingest;
  /// Self-maintenance + shared delta plans (src/maint/).
  MaintConfig maint;
  WarehouseOptions warehouse;
  SourceOptions source_options;

  /// Background compaction of the warehouse's versioned store
  /// (src/compact/): when enabled, Wire() registers a CompactorProcess
  /// and points the warehouse at it. Pair with a non-zero
  /// warehouse.max_retained_versions — with no retained history there
  /// is nothing to compact.
  CompactionConfig compaction;

  /// Attach a reader pool from the config (Wire() calls
  /// AttachReaderPool). Exists so pure-config consumers — the schedule
  /// explorer rebuilds the system from SystemConfig alone — can put
  /// concurrent reads into the explored schedule.
  bool attach_readers = false;
  ReaderPoolOptions readers;

  /// Replace the concurrent architecture by the Section 1.1 sequential
  /// strawman (one process does everything).
  bool sequential_baseline = false;
  SequentialIntegratorOptions sequential;

  /// Fault injection & crash recovery (src/fault/). A non-empty plan
  /// wires checkpointing into every view manager, a WAL into every merge
  /// process, and registers the fault injector.
  FaultOptions fault;

  // --- Observability (src/obs/) ---
  /// Register metric instruments (counters, gauges, histograms) in every
  /// process; snapshot them after Run via WarehouseSystem::metrics().
  bool collect_metrics = false;
  /// Record per-update trace spans (source post -> sequencing -> AL
  /// production -> merge -> commit); required for the derived latency /
  /// staleness histograms, which are computed from the trace at the end
  /// of Run.
  bool collect_trace = false;

  // --- Runtime ---
  uint64_t seed = 1;
  LatencyModel latency = LatencyModel::Zero();
  /// Snapshot warehouse views after every commit (required by the
  /// consistency oracle; disable for large benchmark runs).
  bool record_snapshots = true;
  /// Run on real threads instead of the deterministic simulator.
  bool use_threads = false;
  /// Test/explorer hook: when set, Wire() takes the runtime from this
  /// factory instead of constructing a SimRuntime/ThreadRuntime (the
  /// schedule explorer installs an ExploringRuntime per re-execution).
  /// Called once, before any process registers.
  std::function<std::unique_ptr<Runtime>(const SystemConfig&)>
      runtime_factory;

  // --- Workload ---
  std::vector<Injection> workload;
};

}  // namespace mvc
