// Deterministic run report for a finished WarehouseSystem run.
//
// The report is a pure function of the system's post-run state: same
// config + same seed on the simulator produce a byte-identical string,
// which the deterministic-replay test relies on. Crash/recovery counters
// appear for every process so faulty runs are auditable at a glance.

#pragma once

#include <string>

#include "system/warehouse_system.h"

namespace mvc {

std::string RunReportString(WarehouseSystem& system);

}  // namespace mvc
