// WarehouseSystem: assembles and runs the Figure 1 architecture from a
// SystemConfig — sources, integrator, per-view managers, one or more
// merge processes, the warehouse, a workload driver, and the recording
// hooks for the consistency oracle.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compact/compactor_process.h"
#include "consistency/checker.h"
#include "consistency/recorder.h"
#include "fault/checkpoint_store.h"
#include "fault/fault_injector.h"
#include "fault/merge_log.h"
#include "maint/self_maintaining_vm.h"
#include "merge/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/id_registry.h"
#include "system/config.h"
#include "viewmgr/view_manager.h"
#include "warehouse/reader.h"

namespace mvc {

/// Drives the configured workload: at OnStart it schedules every
/// injection at its simulated time.
class WorkloadDriver : public Process {
 public:
  WorkloadDriver(std::string name, std::vector<Injection> workload,
                 std::map<std::string, ProcessId> source_pids)
      : Process(std::move(name)),
        workload_(std::move(workload)),
        source_pids_(std::move(source_pids)) {}

  void OnStart() override;
  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  std::vector<Injection> workload_;
  std::map<std::string, ProcessId> source_pids_;
};

class WarehouseSystem {
 public:
  /// Validates and wires the whole system. The returned object owns
  /// every process and the runtime.
  static Result<std::unique_ptr<WarehouseSystem>> Build(SystemConfig config);

  /// Runs the workload to quiescence.
  void Run();

  /// Attaches a reader that performs atomic multi-view reads at the
  /// given simulated times (Section 1.1's inquiry application). Must be
  /// called before Run. The returned pointer stays owned by the system.
  /// When `query` is non-null and enabled, the reader runs the
  /// scan-query workload instead (QueryViewMsg; `query_seed` drives its
  /// view/range draws), and an empty view list resolves to every view.
  WarehouseReader* AttachReader(std::vector<std::string> views,
                                std::vector<TimeMicros> read_at,
                                const ReaderQueryOptions* query = nullptr,
                                uint64_t query_seed = 0);

  /// Attaches `options.num_readers` independent readers, each with its
  /// own Poisson read schedule (seed forked per reader) and its own
  /// read.latency_us histogram when metrics are enabled. Must be called
  /// before Run; the pointers stay owned by the system. With
  /// options.query.enabled the pool simulates the production read tier:
  /// Zipf-skewed view popularity, bursts of scan queries per arrival.
  std::vector<WarehouseReader*> AttachReaderPool(
      const ReaderPoolOptions& options);

  /// --- Oracle access ---
  const ConsistencyRecorder& recorder() const { return recorder_; }
  /// The interned identities every process speaks; ids are dense and
  /// minted in config order (views) / name order (relations).
  const IdRegistry& registry() const { return registry_; }
  /// Initial contents of every base relation (all sources combined).
  const Catalog& initial_base() const { return initial_base_; }
  /// A checker bound to this system's views and initial state.
  ConsistencyChecker MakeChecker() const;

  /// --- Component access (stats, assertions) ---
  const SystemConfig& config() const { return config_; }
  Runtime& runtime() { return *runtime_; }
  const WarehouseProcess& warehouse() const { return *warehouse_; }
  const std::vector<std::unique_ptr<MergeProcess>>& merges() const {
    return merges_;
  }
  const std::vector<std::unique_ptr<ViewManagerBase>>& view_managers() const {
    return view_managers_;
  }
  /// Self-maintaining group managers (one per merge group), populated
  /// instead of view_managers() when config.maint.self_maintain is set.
  const std::vector<std::unique_ptr<SelfMaintainingVm>>& maint_vms() const {
    return maint_vms_;
  }
  const std::vector<std::unique_ptr<SourceProcess>>& source_processes() const {
    return sources_;
  }
  /// First integrator shard (the only one when ingest.num_shards == 1).
  const IntegratorProcess* integrator() const {
    return integrator_shards_.empty() ? nullptr
                                      : integrator_shards_.front().get();
  }
  /// Every integrator shard, in shard-index order.
  const std::vector<std::unique_ptr<IntegratorProcess>>& integrator_shards()
      const {
    return integrator_shards_;
  }
  /// Source -> shard assignment (empty when unsharded or sequential).
  const ShardPlan& shard_plan() const { return shard_plan_; }
  /// Global tickets issued across all shards (0 when unsharded).
  int64_t tickets_issued() const {
    return ticketer_ == nullptr ? 0 : ticketer_->issued();
  }
  /// Background compactor; nullptr unless config.compaction.enabled.
  const CompactorProcess* compactor() const { return compactor_.get(); }
  const SequentialIntegrator* sequential_integrator() const {
    return sequential_.get();
  }
  const std::vector<ViewGroup>& view_groups() const { return groups_; }
  const std::vector<BoundView>& bound_views() const { return bound_views_; }

  /// --- Observability (wired iff config.collect_metrics/collect_trace;
  /// both hubs exist when either flag is set so the derived metrics can
  /// always be computed) ---
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  const obs::Tracer* tracer() const { return tracer_.get(); }
  /// Records the end-of-run merge gauges (held ALs, open rows) and
  /// derives the headline histograms (update.commit_latency_us,
  /// view.staleness_us, merge.al_hold_time_us) from the trace.
  /// Idempotent; Run() calls it, tests snapshotting mid-run may too.
  void FinalizeObservability();
  /// Snapshot after FinalizeObservability; empty when disabled.
  obs::MetricsSnapshot MetricsSnapshot() const;
  /// Copy of the span log; empty when disabled.
  std::vector<obs::Span> TraceSnapshot() const;

  /// --- Fault tolerance (wired iff config.fault has a plan) ---
  bool faults_enabled() const { return config_.fault.enabled(); }
  const CheckpointStore* checkpoint_store() const {
    return checkpoint_store_.get();
  }
  /// One WAL per merge process, in merge index order.
  const std::vector<std::unique_ptr<MergeLog>>& merge_logs() const {
    return merge_logs_;
  }
  const FaultInjectorProcess* fault_injector() const {
    return fault_injector_.get();
  }

 private:
  WarehouseSystem() = default;

  Status Wire(SystemConfig config);

  SystemConfig config_;
  std::unique_ptr<Runtime> runtime_;
  IdRegistry registry_;
  Catalog initial_base_;
  std::vector<BoundView> bound_views_;
  std::vector<ViewGroup> groups_;
  ConsistencyRecorder recorder_{true};

  std::vector<std::unique_ptr<SourceProcess>> sources_;
  /// Integrator shards in shard order; exactly one when unsharded.
  std::vector<std::unique_ptr<IntegratorProcess>> integrator_shards_;
  /// Shared cross-shard ticket counter; null when unsharded.
  std::unique_ptr<CrossShardTicketer> ticketer_;
  ShardPlan shard_plan_;
  std::unique_ptr<SequentialIntegrator> sequential_;
  std::vector<std::unique_ptr<ViewManagerBase>> view_managers_;
  std::vector<std::unique_ptr<SelfMaintainingVm>> maint_vms_;
  std::vector<std::unique_ptr<MergeProcess>> merges_;
  std::unique_ptr<WarehouseProcess> warehouse_;
  std::unique_ptr<CompactorProcess> compactor_;
  std::unique_ptr<WorkloadDriver> driver_;
  std::vector<std::unique_ptr<WarehouseReader>> readers_;
  std::unique_ptr<CheckpointStore> checkpoint_store_;
  std::vector<std::unique_ptr<MergeLog>> merge_logs_;
  std::unique_ptr<FaultInjectorProcess> fault_injector_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  bool obs_finalized_ = false;
};

}  // namespace mvc
