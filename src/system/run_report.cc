#include "system/run_report.h"

#include "common/string_util.h"

namespace mvc {

namespace {

void AppendProcessHealth(std::string* out, const Process& p) {
  *out += StrCat(" crashes=", p.crash_count(),
                 " recoveries=", p.recover_count(),
                 " dropped_while_down=", p.dropped_while_down());
}

}  // namespace

std::string RunReportString(WarehouseSystem& system) {
  const ConsistencyRecorder& recorder = system.recorder();
  std::string out = "=== run report ===\n";
  out += StrCat("updates numbered:   ", recorder.updates().size(), "\n");
  out += StrCat("warehouse commits:  ", recorder.commits().size(), "\n");
  out += StrCat("virtual makespan:   ", system.runtime().Now(), " us\n");
  out += StrCat("messages:           ",
                system.runtime().stats().total_messages, "\n");

  out += "view managers:\n";
  for (const auto& vm : system.view_managers()) {
    out += StrCat("  ", vm->name(),
                  ": action_lists=", vm->action_lists_sent(),
                  " updates=", vm->updates_received());
    AppendProcessHealth(&out, *vm);
    out += StrCat(" checkpoints=", vm->checkpoints_written(),
                  " replayed=", vm->updates_replayed(),
                  " silently_advanced=", vm->silently_advanced(),
                  " dropped_recovering=", vm->dropped_during_recovery(),
                  "\n");
  }

  out += "merge processes:\n";
  for (size_t g = 0; g < system.merges().size(); ++g) {
    const MergeProcess& merge = *system.merges()[g];
    const MergeStats& s = merge.stats();
    out += StrCat("  ", merge.name(), ": rels=", s.rels_received,
                  " action_lists=", s.action_lists_received,
                  " submitted=", s.transactions_submitted,
                  " committed=", s.transactions_committed,
                  " actions=", s.actions_submitted);
    AppendProcessHealth(&out, merge);
    const int64_t wal =
        g < system.merge_logs().size() ? system.merge_logs()[g]->size() : 0;
    out += StrCat(" wal_entries=", wal,
                  " wal_replayed=", s.log_entries_replayed,
                  " duplicate_als_dropped=", s.duplicate_als_dropped,
                  " stale_acks=", s.stale_acks,
                  " resync_retries=", s.resync_retries,
                  " dropped_during_resync=", s.dropped_during_resync, "\n");
  }

  out += StrCat("warehouse: committed=",
                system.warehouse().transactions_committed(),
                " actions_applied=", system.warehouse().actions_applied());
  AppendProcessHealth(&out, system.warehouse());
  out += "\n";

  if (system.faults_enabled()) {
    out += StrCat("fault injection: crashes_scheduled=",
                  system.fault_injector()->crashes_scheduled(),
                  " checkpoints_saved=",
                  system.checkpoint_store()->checkpoints_saved(), "\n");
  } else {
    out += "fault injection: disabled\n";
  }

  if (system.metrics() != nullptr) {
    // Counters and gauges only: both are pure functions of the delivery
    // schedule, so the report stays byte-identical across deterministic
    // replays (histograms carry timestamps-derived shapes and stay in
    // the JSON export).
    system.FinalizeObservability();
    const obs::MetricsSnapshot snap = system.MetricsSnapshot();
    out += "metrics:\n";
    for (const obs::CounterSnapshot& c : snap.counters) {
      out += StrCat("  ", c.name, "=", c.value, "\n");
    }
    for (const obs::CounterSnapshot& g : snap.gauges) {
      out += StrCat("  ", g.name, "=", g.value, " (gauge)\n");
    }
  }
  return out;
}

}  // namespace mvc
