// Self-maintaining view manager: one actor maintaining a whole merge
// group's views from auxiliary views, with a shared delta plan.
//
// Unlike the per-view managers in src/viewmgr (one process per view,
// one filtered replica each, optional Strobe-style source query
// rounds), this manager owns every view of one merge group and answers
// maintenance entirely from its auxiliary store: no source round trips
// ever happen on this path, and each update's base delta is pushed
// through the SharedDeltaPlan once per *shared* node rather than once
// per view. It still speaks the stock protocol — one complete-level
// action list per relevant update per view, byte-identical to what a
// CompleteViewManager would emit — so the merge/VUT/warehouse/checker
// pipeline downstream is untouched.

#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "maint/aux_planner.h"
#include "maint/shared_plan.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "query/view_def.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

namespace obs {
class MetricsRegistry;
class Tracer;
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

struct SelfMaintainingVmOptions {
  /// Simulated cost of one shared-plan delta pass per update.
  TimeMicros delta_cost = 0;
  /// Simulated cost per emitted action list.
  TimeMicros per_al_cost = 0;
  /// Build ActionList::covered (must match the system-wide setting so
  /// ALs stay byte-identical to the per-view managers').
  bool collect_covered = true;
  /// Mirror of IntegratorOptions::relevance_pruning: the manager
  /// recomputes each view's relevance locally (it receives one update
  /// copy per group, not per view) and must use the integrator's exact
  /// test so it emits action lists for exactly the views in REL_i.
  bool relevance_pruning = true;
  /// Test-only mutation: silently skip the Nth effective auxiliary
  /// apply (1-based). The auxiliary store goes stale, later deltas are
  /// computed from wrong base state, and the consistency checker must
  /// flag the divergence — the explorer's self-test proves it does.
  int64_t mutation_skip_aux_apply = 0;
};

class SelfMaintainingVm : public Process {
 public:
  SelfMaintainingVm(std::string name, SelfMaintainingVmOptions options);

  /// --- Wiring (before the runtime starts) ---

  /// Adds one view of this manager's group with its interned id. Views
  /// must be added in group order; pointers must outlive the process.
  void AddView(const BoundView* view, ViewId id);

  /// Plans auxiliaries and the shared delta plan for the added views,
  /// creates the auxiliary tables, and seeds them (filtered) from the
  /// initial base state. `aux_name_offset` keeps auxiliary names unique
  /// across groups; when `registry` is non-null every auxiliary is
  /// interned into its relation id space (wiring-time registration, so
  /// tools can name auxiliaries like any other relation). Must run
  /// after every AddView.
  Status Initialize(const Catalog& initial_base, size_t aux_name_offset,
                    IdRegistry* registry = nullptr);

  void SetMerge(ProcessId merge) { merge_ = merge; }

  /// Wires the observability hub: mirrors the per-view managers' vm.*
  /// instruments and kAlProduced spans, plus the maint.* instruments
  /// (shared_node_evals, query_rounds_avoided, aux_bytes).
  void EnableObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  /// --- Introspection ---

  const AuxPlan& aux_plan() const { return aux_plan_; }
  const SharedDeltaPlan& plan() const { return plan_; }
  const Catalog& aux_store() const { return aux_; }
  size_t num_views() const { return views_.size(); }
  int64_t updates_received() const { return updates_received_; }
  int64_t action_lists_sent() const { return action_lists_sent_; }
  /// Shared-plan node evaluations actually run (the bench's headline
  /// number; compare against per-view vm.updates_received sums).
  int64_t shared_node_evals() const { return shared_node_evals_; }
  /// One per emitted action list: maintenance answered from the
  /// auxiliary store where the Strobe-style path could have gone to the
  /// sources.
  int64_t query_rounds_avoided() const { return query_rounds_avoided_; }
  /// Estimated resident bytes of the auxiliary store.
  int64_t aux_bytes() const;

  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  struct PendingUpdate {
    UpdateId id;
    SourceTransaction txn;
  };

  void MaybeStartWork();
  void BusyFor(TimeMicros delay);
  void ProcessUpdate(const PendingUpdate& pu);
  Status ApplyToAuxiliaries(const Update& u);
  bool ViewIsRelevant(const BoundView& view,
                      const SourceTransaction& txn) const;
  void EmitActionList(size_t view_idx, UpdateId id, TableDelta delta,
                      TimeMicros delay);
  void UpdateAuxBytesGauge();

  SelfMaintainingVmOptions options_;
  std::vector<const BoundView*> views_;
  std::vector<ViewId> view_ids_;
  AuxPlan aux_plan_;
  SharedDeltaPlan plan_;
  Catalog aux_;
  ProcessId merge_ = kInvalidProcess;
  std::deque<PendingUpdate> pending_;
  bool busy_ = false;
  int64_t updates_received_ = 0;
  int64_t action_lists_sent_ = 0;
  int64_t shared_node_evals_ = 0;
  int64_t query_rounds_avoided_ = 0;
  int64_t effective_aux_applies_ = 0;
  // --- Observability (all null when disabled) ---
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_updates_ = nullptr;
  obs::Counter* m_als_sent_ = nullptr;
  obs::Histogram* m_batch_updates_ = nullptr;
  obs::Counter* m_shared_evals_ = nullptr;
  obs::Counter* m_rounds_avoided_ = nullptr;
  obs::Gauge* m_aux_bytes_ = nullptr;
};

}  // namespace mvc
