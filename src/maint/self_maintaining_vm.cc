#include "maint/self_maintaining_vm.h"

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/evaluator.h"
#include "query/relevance.h"

namespace mvc {

SelfMaintainingVm::SelfMaintainingVm(std::string name,
                                     SelfMaintainingVmOptions options)
    : Process(std::move(name)), options_(options) {}

void SelfMaintainingVm::AddView(const BoundView* view, ViewId id) {
  MVC_CHECK(view != nullptr);
  MVC_CHECK(id != kInvalidView);
  views_.push_back(view);
  view_ids_.push_back(id);
}

Status SelfMaintainingVm::Initialize(const Catalog& initial_base,
                                     size_t aux_name_offset,
                                     IdRegistry* registry) {
  MVC_CHECK(!views_.empty()) << "self-maintaining manager with no views";
  MVC_ASSIGN_OR_RETURN(aux_plan_, PlanAuxiliaries(views_, aux_name_offset));
  if (registry != nullptr) {
    for (AuxiliaryView& aux : aux_plan_.auxiliaries) {
      aux.id = registry->InternRelation(aux.name);
    }
  }
  MVC_ASSIGN_OR_RETURN(plan_, SharedDeltaPlan::Build(views_, &aux_plan_));
  // Materialize each auxiliary: the base relation filtered through its
  // representative view's single-relation conjuncts — byte-identical to
  // that view's filtered replica on the per-view path.
  for (const AuxiliaryView& aux : aux_plan_.auxiliaries) {
    MVC_RETURN_IF_ERROR(aux_.CreateTable(aux.name, aux.schema));
    MVC_ASSIGN_OR_RETURN(const Table* initial,
                         initial_base.GetTable(aux.relation));
    MVC_ASSIGN_OR_RETURN(Table * table, aux_.GetTable(aux.name));
    Status st;
    initial->ForEachRow([&](const Tuple& t, int64_t c) {
      if (!st.ok()) return;
      if (TupleMayAffectView(*aux.filter_view, aux.relation, t)) {
        st = table->Insert(t, c);
      }
    });
    MVC_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

void SelfMaintainingVm::EnableObservability(obs::MetricsRegistry* metrics,
                                            obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) return;
  const std::string l = StrCat("{process=\"", name(), "\"}");
  m_updates_ = metrics->RegisterCounter(StrCat("vm.updates_received", l));
  m_als_sent_ = metrics->RegisterCounter(StrCat("vm.action_lists_sent", l));
  m_batch_updates_ =
      metrics->RegisterHistogram(StrCat("vm.al_batch_updates", l), "updates");
  m_shared_evals_ =
      metrics->RegisterCounter(StrCat("maint.shared_node_evals", l));
  m_rounds_avoided_ =
      metrics->RegisterCounter(StrCat("maint.query_rounds_avoided", l));
  m_aux_bytes_ = metrics->RegisterGauge(StrCat("maint.aux_bytes", l));
  UpdateAuxBytesGauge();
}

int64_t SelfMaintainingVm::aux_bytes() const {
  // The Table stores (tuple -> count) pairs; estimate one machine word
  // per value plus map/count overhead per distinct row.
  int64_t bytes = 0;
  for (const AuxiliaryView& aux : aux_plan_.auxiliaries) {
    auto table = aux_.GetTable(aux.name);
    if (!table.ok()) continue;
    const int64_t row_bytes =
        8 * static_cast<int64_t>(aux.schema.num_columns()) + 16;
    bytes += row_bytes * static_cast<int64_t>(table.value()->NumDistinct());
  }
  return bytes;
}

void SelfMaintainingVm::UpdateAuxBytesGauge() {
  if (m_aux_bytes_ != nullptr) m_aux_bytes_->Set(aux_bytes());
}

bool SelfMaintainingVm::ViewIsRelevant(const BoundView& view,
                                       const SourceTransaction& txn) const {
  // Exactly the integrator's REL_i membership test: the integrator
  // sends this manager one update copy per affected *group*, so the
  // per-view fan-out is recomputed here.
  for (const Update& u : txn.updates) {
    const bool relevant =
        options_.relevance_pruning
            ? UpdateIsRelevant(view, u)
            : view.RelationIndex(u.relation).has_value();
    if (relevant) return true;
  }
  return false;
}

Status SelfMaintainingVm::ApplyToAuxiliaries(const Update& u) {
  for (const AuxiliaryView& aux : aux_plan_.auxiliaries) {
    if (aux.relation != u.relation) continue;
    const BoundView& filter = *aux.filter_view;
    const bool old_in = u.op != UpdateOp::kInsert &&
                        TupleMayAffectView(filter, u.relation, u.tuple);
    const bool new_in =
        (u.op == UpdateOp::kInsert &&
         TupleMayAffectView(filter, u.relation, u.tuple)) ||
        (u.op == UpdateOp::kModify &&
         TupleMayAffectView(filter, u.relation, u.new_tuple));
    if (!old_in && !new_in) continue;
    if (++effective_aux_applies_ == options_.mutation_skip_aux_apply) {
      // Injected staleness: this auxiliary misses one base change, so
      // every later delta computed over it is wrong. The consistency
      // checker downstream must catch the divergence.
      continue;
    }
    MVC_ASSIGN_OR_RETURN(Table * table, aux_.GetTable(aux.name));
    // Once a skip has been injected the auxiliary is stale, so a later
    // delete may target a row the skip never inserted; that miss is part
    // of the injected corruption, not a reason to abort the run.
    const bool mutated = options_.mutation_skip_aux_apply != 0;
    switch (u.op) {
      case UpdateOp::kInsert:
        MVC_RETURN_IF_ERROR(table->Insert(u.tuple));
        break;
      case UpdateOp::kDelete: {
        Status st = table->Delete(u.tuple);
        if (!st.ok() && !mutated) return st;
        break;
      }
      case UpdateOp::kModify:
        if (old_in) {
          Status st = table->Delete(u.tuple);
          if (!st.ok() && !mutated) return st;
        }
        if (new_in) MVC_RETURN_IF_ERROR(table->Insert(u.new_tuple));
        break;
    }
  }
  return Status::OK();
}

void SelfMaintainingVm::EmitActionList(size_t view_idx, UpdateId id,
                                       TableDelta delta, TimeMicros delay) {
  ActionList al;
  al.view = view_ids_[view_idx];
  al.first_update = id;
  al.update = id;
  if (options_.collect_covered) al.covered.push_back(id);
  al.delta = std::move(delta);
  if (m_als_sent_ != nullptr) {
    m_als_sent_->Add();
    m_batch_updates_->Record(1);
  }
  ++query_rounds_avoided_;
  if (m_rounds_avoided_ != nullptr) m_rounds_avoided_->Add();
  if (tracer_ != nullptr) {
    tracer_->Record(obs::Span{obs::SpanKind::kAlProduced, id, al.view, -1,
                              al.update, Now(), name()});
  }
  auto msg = std::make_unique<ActionListMsg>();
  msg->al = std::move(al);
  ++action_lists_sent_;
  SendAfter(merge_, std::move(msg), delay);
}

void SelfMaintainingVm::ProcessUpdate(const PendingUpdate& pu) {
  // Which of the group's views this update is relevant to — the set the
  // integrator put in REL_i for this group.
  std::vector<char> relevant(views_.size(), 0);
  for (size_t vi = 0; vi < views_.size(); ++vi) {
    relevant[vi] = ViewIsRelevant(*views_[vi], pu.txn) ? 1 : 0;
  }

  // Telescoping evaluation, exactly the per-view managers' order: for
  // each update of the transaction, push its base delta through the
  // shared plan against the *current* auxiliary state, then advance the
  // auxiliaries past it.
  std::vector<TableDelta> acc(views_.size());
  for (size_t vi = 0; vi < views_.size(); ++vi) {
    acc[vi].target = views_[vi]->name();
  }
  TableProviderFn provider = CatalogProvider(&aux_);
  const int64_t evals_before = shared_node_evals_;
  for (const Update& u : pu.txn.updates) {
    TableDelta base = ViewEvaluator::UpdateToBaseDelta(u);
    Status st = plan_.EvaluateUpdate(u.relation, base, provider, &acc,
                                     &shared_node_evals_);
    MVC_CHECK(st.ok()) << st.ToString();
    st = ApplyToAuxiliaries(u);
    MVC_CHECK(st.ok()) << st.ToString();
  }
  if (m_shared_evals_ != nullptr) {
    m_shared_evals_->Add(shared_node_evals_ - evals_before);
  }
  UpdateAuxBytesGauge();

  // One complete-level action list per relevant view (empty deltas
  // included), labelled with this update — byte-identical to what the
  // per-view complete managers would have emitted.
  TimeMicros cost = options_.delta_cost;
  for (size_t vi = 0; vi < views_.size(); ++vi) {
    if (!relevant[vi]) continue;
    cost += options_.per_al_cost;
  }
  for (size_t vi = 0; vi < views_.size(); ++vi) {
    if (!relevant[vi]) continue;
    acc[vi].Normalize();
    EmitActionList(vi, pu.id, std::move(acc[vi]), cost);
  }
  BusyFor(cost);
}

void SelfMaintainingVm::BusyFor(TimeMicros delay) {
  busy_ = true;
  ScheduleSelf(std::make_unique<TickMsg>(), delay);
}

void SelfMaintainingVm::MaybeStartWork() {
  if (busy_ || pending_.empty()) return;
  PendingUpdate pu = std::move(pending_.front());
  pending_.pop_front();
  ProcessUpdate(pu);
}

void SelfMaintainingVm::OnMessage(ProcessId /*from*/, MessagePtr msg) {
  switch (msg->kind) {
    case Message::Kind::kUpdate: {
      auto* update = static_cast<UpdateMsg*>(msg.get());
      ++updates_received_;
      if (m_updates_ != nullptr) m_updates_->Add();
      pending_.push_back(
          PendingUpdate{update->update_id, std::move(update->txn)});
      MaybeStartWork();
      return;
    }
    case Message::Kind::kTick: {
      busy_ = false;
      MaybeStartWork();
      return;
    }
    default:
      MVC_LOG_ERROR() << "self-maintaining manager " << name()
                      << ": unexpected message " << msg->Summary();
  }
}

}  // namespace mvc
