// Auxiliary-view planning for self-maintainable join views
// (Ross/Srivastava/Sudarshan; seeded by examples/auxiliary_views.cpp).
//
// An SPJ view R1 ⋈ ... ⋈ Rn is self-maintainable once the warehouse
// keeps, for every base relation Ri, the auxiliary view
//
//   Ai = sigma_{ci}(Ri)
//
// where ci is the conjunction of the view's selection conjuncts that
// mention only Ri (plus any constant conjuncts): the delta of the view
// under any base update is then computable from the auxiliaries alone,
// with no source round trip. The planner derives that auxiliary set for
// a whole view group and dedups it — two views applying the same
// single-relation filter to the same relation share one auxiliary,
// which is the first common-subexpression win the SharedDeltaPlan
// builds on.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/view_def.h"
#include "storage/id_registry.h"
#include "storage/schema.h"

namespace mvc {

/// One auxiliary view: a filtered copy of a single base relation, kept
/// by the self-maintaining manager and shared by every dependent view
/// whose single-relation selection over that relation is identical.
struct AuxiliaryView {
  /// Globally unique auxiliary name ("aux:<relation>#<k>"); interned
  /// into the IdRegistry's relation space at wiring time.
  std::string name;
  /// The base relation this auxiliary filters.
  std::string relation;
  /// Canonical filter signature (relation + sorted qualified conjunct
  /// strings); the dedup key.
  std::string signature;
  /// The base relation's schema with columns renamed "<relation>.<col>"
  /// so plan-node join schemas stay unambiguous.
  Schema schema;
  /// Representative dependent view: its single-relation conjuncts over
  /// `relation` define the filter (TupleMayAffectView reuses the exact
  /// relevance-pruning semantics, keeping the auxiliary byte-identical
  /// to that view's filtered replica). Points into the caller's bound
  /// views and must outlive the plan.
  const BoundView* filter_view = nullptr;
  /// Names of the views maintained from this auxiliary.
  std::vector<std::string> dependent_views;
  /// Interned relation id, set by the system wiring.
  RelationId id = kInvalidRelation;
};

/// The auxiliary set for one view group plus the per-view lookup table.
struct AuxPlan {
  std::vector<AuxiliaryView> auxiliaries;
  /// View name -> auxiliary index per view relation position.
  std::map<std::string, std::vector<size_t>> view_aux;

  /// The auxiliary backing `view`'s relation position `rel_idx`.
  const AuxiliaryView& AuxFor(const std::string& view, size_t rel_idx) const;
};

/// Canonical signature of the single-relation selection `view` applies
/// to relation position `rel`: every conjunct mentioning only that
/// relation (plus constant conjuncts), rendered with fully qualified
/// column references and sorted. Views with equal signatures can share
/// one auxiliary.
std::string AuxFilterSignature(const BoundView& view, size_t rel);

/// Derives the deduplicated auxiliary set making every view in `views`
/// self-maintainable. `name_offset` seeds the "#<k>" suffix so several
/// groups' auxiliaries stay globally unique.
Result<AuxPlan> PlanAuxiliaries(const std::vector<const BoundView*>& views,
                                size_t name_offset = 0);

}  // namespace mvc
