// Shared delta-propagation plans across overlapping SPJ views
// (multi-query optimization: Mistry/Roy/Ramamritham/Sudarshan).
//
// For every (view, base relation) pair the counting algorithm needs the
// delta join ΔR ⋈ A1 ⋈ ... ⋈ Ak over the view's auxiliaries. Many
// dashboard views share both the filtered ΔR root (same single-relation
// selection) and join prefixes (same join conditions over the same
// auxiliaries), so the per-view evaluation repeats identical work once
// per view. This plan factors those common subexpressions into a DAG:
//
//   root node   Δσ_c(R)            — the base delta pushed through one
//                                    auxiliary's filter;
//   inner node  parent ⋈ σ(S)      — one hash-join step against an
//                                    auxiliary, with exactly the view
//                                    conjuncts that become applicable
//                                    at that step;
//   route       (view, relation) -> leaf node + projection map.
//
// Nodes are deduplicated by a structural signature, so each ΔR batch is
// evaluated once per *distinct* node and fanned out to every dependent
// view. Each node is a synthetic BoundView evaluated by the stock
// ViewEvaluator::EvaluateDelta, which keeps the bag semantics (and thus
// the emitted action lists) byte-identical to the per-view path: every
// view conjunct is applied at the first step where its relations are
// joined, multiplicities multiply through the chain, and the final
// projection remaps leaf columns into the view's output order.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "maint/aux_planner.h"
#include "query/evaluator.h"
#include "query/view_def.h"
#include "storage/delta.h"

namespace mvc {

class SharedDeltaPlan {
 public:
  /// One DAG node: a synthetic single-join (or root filter) view over
  /// auxiliary schemas, deduplicated across the view set.
  struct Node {
    /// Feeding node, -1 for a delta root.
    int parent = -1;
    /// Structural sharing key (embeds the parent's key).
    std::string signature;
    /// Synthetic output relation name ("plan:<k>"); children bind
    /// against it.
    std::string table_name;
    /// Name of the relation whose delta feeds this node: the base
    /// relation for roots, the parent's table_name otherwise.
    std::string delta_input;
    /// Index into the AuxPlan of the auxiliary this node filters (root)
    /// or joins (inner node).
    size_t aux_index = 0;
    /// The synthetic view the evaluator runs at this node.
    BoundView bound;
    std::vector<int> children;
    /// Views whose delta chain passes through this node.
    std::vector<std::string> dependent_views;
  };

  /// Per (view, relation) route: the chain's leaf plus the leaf-tuple
  /// offsets producing the view's projected output columns.
  struct Route {
    int leaf = -1;
    std::vector<size_t> projection;
  };

  /// Builds the DAG for `views` over the auxiliaries in `aux` (which
  /// must have been planned for exactly this view set). Pointers must
  /// outlive the plan.
  static Result<SharedDeltaPlan> Build(
      const std::vector<const BoundView*>& views, const AuxPlan* aux);

  /// Propagates one base-relation delta through every dependent chain,
  /// evaluating each shared node at most once, and appends each view's
  /// projected delta rows into `(*per_view_acc)[i]` (indexed like the
  /// `views` vector given to Build; rows are appended un-normalized so
  /// the caller can accumulate a whole transaction before normalizing).
  /// `provider` must serve the auxiliary tables by name. `node_evals`
  /// (optional) is incremented once per node evaluation actually run —
  /// empty inputs short-circuit without counting.
  Status EvaluateUpdate(const std::string& relation,
                        const TableDelta& base_delta,
                        const TableProviderFn& provider,
                        std::vector<TableDelta>* per_view_acc,
                        int64_t* node_evals = nullptr) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  size_t num_views() const { return view_names_.size(); }
  const std::string& view_name(size_t i) const { return view_names_[i]; }

  /// Nodes serving more than one dependent view — the sharing the plan
  /// exists for.
  size_t num_shared_nodes() const;

  /// Total (view, relation) chain steps a per-view planner would have
  /// built; `nodes().size()` is what sharing left of them.
  size_t num_unshared_steps() const { return unshared_steps_; }

  /// Human-readable DAG dump (tests and debugging).
  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::string> view_names_;
  /// Per view (Build order): relation name -> route.
  std::vector<std::map<std::string, Route>> routes_;
  /// Base relation -> root node indexes.
  std::map<std::string, std::vector<int>> roots_;
  size_t unshared_steps_ = 0;

  Status EvalNode(int idx, const TableDelta& base_delta,
                  const TableProviderFn& provider,
                  std::vector<TableDelta>* memo, std::vector<char>* done,
                  int64_t* node_evals) const;
};

}  // namespace mvc
