#include "maint/aux_planner.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvc {

const AuxiliaryView& AuxPlan::AuxFor(const std::string& view,
                                     size_t rel_idx) const {
  auto it = view_aux.find(view);
  MVC_CHECK(it != view_aux.end()) << "view '" << view
                                  << "' has no auxiliary plan";
  MVC_CHECK(rel_idx < it->second.size());
  return auxiliaries[it->second[rel_idx]];
}

std::string AuxFilterSignature(const BoundView& view, size_t rel) {
  const std::string& relation = view.relation(rel);
  std::vector<std::string> parts;
  for (const BoundView::Conjunct& conj : view.conjuncts()) {
    const bool single_relation =
        conj.relations.size() == 1 && conj.relations[0] == rel;
    const bool constant = conj.relations.empty();
    if (!single_relation && !constant) continue;
    // Qualify every reference so textually different but equivalent
    // spellings ("price" vs "R.price") collapse to one signature.
    Predicate qualified =
        conj.unbound.RewriteColumns([&](const ColumnRef& ref) {
          return ColumnRef{constant ? ref.relation : relation, ref.column};
        });
    parts.push_back(qualified.ToString());
  }
  std::sort(parts.begin(), parts.end());
  return StrCat("sigma[", JoinToString(parts, " AND "), "](", relation, ")");
}

Result<AuxPlan> PlanAuxiliaries(const std::vector<const BoundView*>& views,
                                size_t name_offset) {
  AuxPlan plan;
  std::map<std::string, size_t> by_signature;
  for (const BoundView* view : views) {
    MVC_CHECK(view != nullptr);
    std::vector<size_t>& slots = plan.view_aux[view->name()];
    if (!slots.empty()) {
      return Status::InvalidArgument(
          StrCat("view '", view->name(), "' planned twice"));
    }
    for (size_t r = 0; r < view->num_relations(); ++r) {
      const std::string signature = AuxFilterSignature(*view, r);
      auto [it, inserted] =
          by_signature.emplace(signature, plan.auxiliaries.size());
      if (inserted) {
        AuxiliaryView aux;
        aux.name = StrCat("aux:", view->relation(r), "#",
                          name_offset + plan.auxiliaries.size());
        aux.relation = view->relation(r);
        aux.signature = signature;
        aux.filter_view = view;
        const Schema& base = view->relation_schema(r);
        std::vector<Column> cols;
        cols.reserve(base.num_columns());
        for (size_t c = 0; c < base.num_columns(); ++c) {
          Column col = base.column(c);
          col.name = StrCat(aux.relation, ".", col.name);
          cols.push_back(std::move(col));
        }
        aux.schema = Schema(std::move(cols));
        plan.auxiliaries.push_back(std::move(aux));
      }
      plan.auxiliaries[it->second].dependent_views.push_back(view->name());
      slots.push_back(it->second);
    }
  }
  return plan;
}

}  // namespace mvc
