#include "maint/shared_plan.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/string_util.h"

namespace mvc {

namespace {

/// Resolves a conjunct column reference to the view-relation index it
/// touches (unqualified references must be unambiguous, exactly as in
/// BoundView::Bind).
Result<size_t> RelationOfRef(const BoundView& view, const ColumnRef& ref) {
  if (!ref.relation.empty()) {
    auto idx = view.RelationIndex(ref.relation);
    if (!idx.has_value()) {
      return Status::NotFound(StrCat("view '", view.name(), "': relation '",
                                     ref.relation, "' not part of the view"));
    }
    return *idx;
  }
  std::optional<size_t> found;
  for (size_t i = 0; i < view.num_relations(); ++i) {
    if (view.relation_schema(i).FindColumn(ref.column).has_value()) {
      if (found.has_value()) {
        return Status::InvalidArgument(StrCat(
            "view '", view.name(), "': column '", ref.column,
            "' is ambiguous"));
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::NotFound(StrCat("view '", view.name(), "': column '",
                                   ref.column, "' not found"));
  }
  return *found;
}

/// Rewrites one conjunct's column references through `map_ref`, which
/// receives the resolved view-relation index. Errors surface through
/// `status` (the rewrite callback cannot fail directly).
Result<Predicate> RewriteConjunct(
    const BoundView& view, const Predicate& conj,
    const std::function<ColumnRef(size_t rel, const ColumnRef&)>& map_ref) {
  Status status;
  Predicate rewritten = conj.RewriteColumns([&](const ColumnRef& ref) {
    auto rel = RelationOfRef(view, ref);
    if (!rel.ok()) {
      if (status.ok()) status = rel.status();
      return ref;
    }
    return map_ref(rel.value(), ref);
  });
  MVC_RETURN_IF_ERROR(status);
  return rewritten;
}

}  // namespace

Result<SharedDeltaPlan> SharedDeltaPlan::Build(
    const std::vector<const BoundView*>& views, const AuxPlan* aux) {
  MVC_CHECK(aux != nullptr);
  SharedDeltaPlan plan;
  std::map<std::string, int> node_of;  // signature -> node index

  for (const BoundView* vp : views) {
    MVC_CHECK(vp != nullptr);
    const BoundView& view = *vp;
    const size_t vi = plan.view_names_.size();
    plan.view_names_.push_back(view.name());
    plan.routes_.emplace_back();
    auto slots_it = aux->view_aux.find(view.name());
    if (slots_it == aux->view_aux.end()) {
      return Status::InvalidArgument(
          StrCat("view '", view.name(), "' missing from the auxiliary plan"));
    }
    const std::vector<size_t>& aux_slots = slots_it->second;

    const size_t n = view.num_relations();
    for (size_t r = 0; r < n; ++r) {
      plan.unshared_steps_ += n;
      // Chain order: the delta relation first, the rest in view order
      // (a pure join reorder, legal under bag semantics because every
      // conjunct is applied exactly at the step its relations complete).
      std::vector<size_t> order;
      order.push_back(r);
      for (size_t k = 0; k < n; ++k) {
        if (k != r) order.push_back(k);
      }
      std::vector<size_t> chain_pos(n);
      std::vector<size_t> chain_base(n);
      size_t width = 0;
      for (size_t p = 0; p < n; ++p) {
        chain_pos[order[p]] = p;
        chain_base[p] = width;
        width += view.relation_schema(order[p]).num_columns();
      }
      // Each conjunct fires at the first chain step covering all its
      // relations; constant conjuncts fire at the root.
      std::vector<std::vector<const BoundView::Conjunct*>> at_step(n);
      for (const BoundView::Conjunct& conj : view.conjuncts()) {
        size_t step = 0;
        for (size_t rel : conj.relations) {
          step = std::max(step, chain_pos[rel]);
        }
        at_step[step].push_back(&conj);
      }

      int parent = -1;
      for (size_t p = 0; p < n; ++p) {
        const size_t rel = order[p];
        const AuxiliaryView& aux_view = aux->auxiliaries[aux_slots[rel]];

        // Sharing key: canonical (base-relation-qualified, sorted)
        // conjunct strings. Two views reaching the same key have built
        // the same chain prefix over the same auxiliaries.
        std::vector<std::string> canon;
        for (const BoundView::Conjunct* conj : at_step[p]) {
          MVC_ASSIGN_OR_RETURN(
              Predicate q,
              RewriteConjunct(view, conj->unbound,
                              [&](size_t cr, const ColumnRef& ref) {
                                return ColumnRef{view.relation(cr),
                                                 ref.column};
                              }));
          canon.push_back(q.ToString());
        }
        std::sort(canon.begin(), canon.end());
        const std::string step_sig =
            StrCat(aux_view.name, "{", JoinToString(canon, " AND "), "}");
        const std::string signature =
            parent < 0 ? StrCat("delta ", step_sig)
                       : StrCat(plan.nodes_[parent].signature, " join ",
                                step_sig);

        auto [it, inserted] = node_of.emplace(
            signature, static_cast<int>(plan.nodes_.size()));
        if (inserted) {
          Node node;
          node.parent = parent;
          node.signature = signature;
          node.table_name = StrCat("plan:", plan.nodes_.size());
          node.aux_index = aux_slots[rel];
          ViewDefinition def;
          def.name = node.table_name;
          std::map<std::string, Schema> schemas;
          if (parent < 0) {
            node.delta_input = aux_view.name;
            def.relations = {aux_view.name};
            schemas[aux_view.name] = aux_view.schema;
          } else {
            const Node& up = plan.nodes_[parent];
            node.delta_input = up.table_name;
            def.relations = {up.table_name, aux_view.name};
            schemas[up.table_name] = up.bound.output_schema();
            schemas[aux_view.name] = aux_view.schema;
          }
          // Rebind this step's conjuncts against the synthetic schemas:
          // references into the joined relation hit the auxiliary, all
          // earlier relations live in the parent's (prefixed) output.
          std::vector<Predicate> preds;
          for (const BoundView::Conjunct* conj : at_step[p]) {
            MVC_ASSIGN_OR_RETURN(
                Predicate rewritten,
                RewriteConjunct(
                    view, conj->unbound,
                    [&](size_t cr, const ColumnRef& ref) {
                      const std::string col =
                          StrCat(view.relation(cr), ".", ref.column);
                      if (cr == rel) return ColumnRef{aux_view.name, col};
                      MVC_CHECK(parent >= 0)
                          << "root conjunct referencing a later relation";
                      return ColumnRef{node.delta_input, col};
                    }));
            preds.push_back(std::move(rewritten));
          }
          def.predicate = Predicate::And(std::move(preds));
          MVC_ASSIGN_OR_RETURN(node.bound, BoundView::Bind(def, schemas));
          if (parent >= 0) {
            plan.nodes_[parent].children.push_back(
                static_cast<int>(plan.nodes_.size()));
          }
          plan.nodes_.push_back(std::move(node));
        }
        const int idx = it->second;
        Node& node = plan.nodes_[idx];
        if (node.dependent_views.empty() ||
            node.dependent_views.back() != view.name()) {
          node.dependent_views.push_back(view.name());
        }
        if (p == 0) {
          std::vector<int>& roots = plan.roots_[view.relation(r)];
          if (std::find(roots.begin(), roots.end(), idx) == roots.end()) {
            roots.push_back(idx);
          }
        }
        parent = idx;
      }

      // Route: leaf plus the remap from view-projection offsets (over
      // the view's own concatenation order) to leaf-tuple offsets (over
      // the chain's concatenation order).
      Route route;
      route.leaf = parent;
      for (size_t off : view.projection_offsets()) {
        size_t rel = 0;
        for (size_t k = 0; k < n; ++k) {
          if (off >= view.relation_offset(k)) rel = k;
        }
        route.projection.push_back(chain_base[chain_pos[rel]] +
                                   (off - view.relation_offset(rel)));
      }
      plan.routes_[vi][view.relation(r)] = std::move(route);
    }
  }
  return plan;
}

Status SharedDeltaPlan::EvalNode(int idx, const TableDelta& base_delta,
                                 const TableProviderFn& provider,
                                 std::vector<TableDelta>* memo,
                                 std::vector<char>* done,
                                 int64_t* node_evals) const {
  if ((*done)[idx]) return Status::OK();
  (*done)[idx] = 1;
  const Node& node = nodes_[idx];
  const TableDelta* input = &base_delta;
  if (node.parent >= 0) {
    MVC_RETURN_IF_ERROR(EvalNode(node.parent, base_delta, provider, memo,
                                 done, node_evals));
    input = &(*memo)[node.parent];
  }
  // An empty input joins to nothing: short-circuit the whole subtree
  // without charging an evaluation.
  if (input->empty()) return Status::OK();
  MVC_ASSIGN_OR_RETURN(
      (*memo)[idx],
      ViewEvaluator::EvaluateDelta(node.bound, node.delta_input, *input,
                                   provider));
  if (node_evals != nullptr) ++*node_evals;
  return Status::OK();
}

Status SharedDeltaPlan::EvaluateUpdate(const std::string& relation,
                                       const TableDelta& base_delta,
                                       const TableProviderFn& provider,
                                       std::vector<TableDelta>* per_view_acc,
                                       int64_t* node_evals) const {
  MVC_CHECK(per_view_acc != nullptr &&
            per_view_acc->size() == view_names_.size());
  if (roots_.find(relation) == roots_.end()) return Status::OK();
  std::vector<TableDelta> memo(nodes_.size());
  std::vector<char> done(nodes_.size(), 0);
  for (size_t vi = 0; vi < routes_.size(); ++vi) {
    auto rit = routes_[vi].find(relation);
    if (rit == routes_[vi].end()) continue;
    const Route& route = rit->second;
    MVC_RETURN_IF_ERROR(EvalNode(route.leaf, base_delta, provider, &memo,
                                 &done, node_evals));
    TableDelta& acc = (*per_view_acc)[vi];
    for (const DeltaRow& row : memo[route.leaf].rows) {
      Tuple out;
      out.reserve(route.projection.size());
      for (size_t off : route.projection) out.push_back(row.tuple[off]);
      acc.Add(std::move(out), row.count);
    }
  }
  return Status::OK();
}

size_t SharedDeltaPlan::num_shared_nodes() const {
  size_t shared = 0;
  for (const Node& node : nodes_) {
    if (node.dependent_views.size() > 1) ++shared;
  }
  return shared;
}

std::string SharedDeltaPlan::ToString() const {
  std::ostringstream os;
  os << "SharedDeltaPlan: " << nodes_.size() << " nodes ("
     << num_shared_nodes() << " shared) for " << unshared_steps_
     << " per-view chain steps\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    os << "  [" << i << "] " << node.signature << " -> " << node.table_name;
    if (node.parent >= 0) os << " (parent " << node.parent << ")";
    os << " views=[" << JoinToString(node.dependent_views, ",") << "]\n";
  }
  return os.str();
}

}  // namespace mvc
