#include "fault/merge_log.h"

#include "common/string_util.h"

namespace mvc {

std::string MergeLogEntry::ToString() const {
  switch (kind) {
    case Kind::kRel:
      return StrCat("REL U", update_id, " {", JoinToString(views, ","), "}");
    case Kind::kActionList:
      return StrCat("AL ", al.ToString());
    case Kind::kFlush:
      return "FLUSH";
    case Kind::kSubmit:
      return StrCat("SUBMIT ", txn.ToString());
    case Kind::kAck:
      return StrCat("ACK WT", txn_id);
  }
  return "?";
}

void MergeLog::Append(MergeLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

std::vector<MergeLogEntry> MergeLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

int64_t MergeLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace mvc
