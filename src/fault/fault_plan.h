// Deterministic fault schedules.
//
// A FaultPlan is a list of (target process, crash time, downtime) events
// executed by a FaultInjectorProcess (fault_injector.h). Because crashes
// and restarts travel as ordinary messages, the same plan produces the
// same fault sequence under SimRuntime on every run with the same seed —
// which is what makes crash-recovery testable against the consistency
// oracle.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mvc {

/// One crash/restart pair for one process.
struct FaultEvent {
  /// Name of the process to crash ("vm-V1", "merge-0", ...).
  std::string target;
  /// Time (microseconds from start) the CrashMsg is scheduled.
  int64_t at = 0;
  /// How long the process stays down before the RecoverMsg.
  int64_t down_for = 20000;

  std::string ToString() const;
};

/// An ordered fault schedule.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::string ToString() const;
};

/// Parses a fault spec of the form
///   "target@at[+down_for],target@at[+down_for],..."
/// e.g. "vm-V1@5000+30000,merge-0@12000". Whitespace around commas is
/// not allowed (the spec is a flag value). Times are microseconds.
Result<FaultPlan> ParseFaultSpec(const std::string& spec);

/// Fault-tolerance knobs carried in the system config.
struct FaultOptions {
  /// The crash/restart schedule; empty plan = fault tolerance wired but
  /// never exercised.
  FaultPlan plan;
  /// A view manager checkpoints after every N action-list emissions.
  int32_t checkpoint_every = 4;
  /// A recovering merge retries an unanswered AL resync request after
  /// this delay (the target view manager may itself be down).
  int64_t resync_retry_micros = 10000;
  /// Retry cap so a simulation with a permanently dead manager still
  /// quiesces.
  int32_t max_resync_retries = 50;

  bool enabled() const { return !plan.empty(); }
};

}  // namespace mvc
