#include "fault/fault_injector.h"

#include <memory>

#include "net/protocol.h"

namespace mvc {

void FaultInjectorProcess::OnStart() {
  for (const FaultEvent& ev : plan_.events) {
    auto it = targets_.find(ev.target);
    MVC_CHECK(it != targets_.end());  // wiring validates targets
    SendAfter(it->second, std::make_unique<CrashMsg>(), ev.at);
    SendAfter(it->second, std::make_unique<RecoverMsg>(),
              ev.at + ev.down_for);
    ++crashes_scheduled_;
  }
}

void FaultInjectorProcess::OnMessage(ProcessId /*from*/, MessagePtr /*msg*/) {
  // The injector only sends; nothing addresses it.
}

}  // namespace mvc
