#include "fault/fault_plan.h"

#include <cctype>

#include "common/string_util.h"

namespace mvc {

std::string FaultEvent::ToString() const {
  return StrCat(target, "@", at, "+", down_for);
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ",";
    out += events[i].ToString();
  }
  return out;
}

namespace {

Result<int64_t> ParseMicros(const std::string& s, const std::string& what) {
  if (s.empty()) {
    return Status::InvalidArgument(StrCat("fault spec: empty ", what));
  }
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          StrCat("fault spec: bad ", what, " '", s, "'"));
    }
  }
  return static_cast<int64_t>(std::stoll(s));
}

}  // namespace

Result<FaultPlan> ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& part : SplitString(spec, ',')) {
    size_t at_pos = part.find('@');
    if (at_pos == std::string::npos || at_pos == 0) {
      return Status::InvalidArgument(
          StrCat("fault spec: expected target@time in '", part, "'"));
    }
    FaultEvent ev;
    ev.target = part.substr(0, at_pos);
    std::string times = part.substr(at_pos + 1);
    size_t plus_pos = times.find('+');
    std::string at_str =
        plus_pos == std::string::npos ? times : times.substr(0, plus_pos);
    MVC_ASSIGN_OR_RETURN(ev.at, ParseMicros(at_str, "crash time"));
    if (plus_pos != std::string::npos) {
      MVC_ASSIGN_OR_RETURN(
          ev.down_for, ParseMicros(times.substr(plus_pos + 1), "downtime"));
      if (ev.down_for <= 0) {
        return Status::InvalidArgument(
            StrCat("fault spec: downtime must be positive in '", part, "'"));
      }
    }
    plan.events.push_back(std::move(ev));
  }
  return plan;
}

}  // namespace mvc
