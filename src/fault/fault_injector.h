// FaultInjectorProcess: executes a FaultPlan by sending CrashMsg /
// RecoverMsg pairs to the targeted processes.
//
// Because the injector is an ordinary process and faults are ordinary
// messages, both runtimes gain fault delivery for free: Process::Deliver
// intercepts the control messages before OnMessage. Per-channel FIFO
// guarantees each crash arrives before its paired recover even when
// latencies are random.

#pragma once

#include <map>
#include <string>

#include "fault/fault_plan.h"
#include "net/runtime.h"

namespace mvc {

class FaultInjectorProcess : public Process {
 public:
  /// `targets` maps plan target names to registered process ids; every
  /// plan target must be present (validated by the system wiring).
  FaultInjectorProcess(FaultPlan plan,
                       std::map<std::string, ProcessId> targets)
      : Process("fault-injector"),
        plan_(std::move(plan)),
        targets_(std::move(targets)) {}

  void OnStart() override;
  void OnMessage(ProcessId from, MessagePtr msg) override;

  int64_t crashes_scheduled() const { return crashes_scheduled_; }

 private:
  FaultPlan plan_;
  std::map<std::string, ProcessId> targets_;
  int64_t crashes_scheduled_ = 0;
};

}  // namespace mvc
