// Durable state for crash recovery, modelled as in-memory stores that
// survive a process "crash" (the process object loses its volatile
// members; anything placed here persists).
//
// CheckpointStore holds, per view manager:
//  * the latest checkpoint — a deep copy of the manager's base-relation
//    replica plus the last update id the emitted action lists cover; and
//  * the action-list outbox — every AL the manager ever emitted, in
//    label order. The outbox is what lets a recovering merge process ask
//    "resend everything after label j" without the view manager
//    recomputing old deltas.
//
// All methods are mutex-guarded so the store can back ThreadRuntime runs.

#pragma once

#include <map>
#include <mutex>  // mvc-lint: allow-sync -- durable state shared with ThreadRuntime workers
#include <optional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "storage/catalog.h"

namespace mvc {

/// A view manager's recovery point.
struct VmCheckpoint {
  /// Deep copy of the manager's source-replica catalog.
  Catalog replica;
  /// j: every update with id <= j is reflected in emitted action lists
  /// (and therefore must not be replayed into the pending queue).
  UpdateId covered_through = kInvalidUpdate;
};

/// Shared durable store for all view managers of one system.
class CheckpointStore {
 public:
  /// Replaces `view`'s checkpoint with a deep copy of `replica`.
  void Save(const std::string& view, const Catalog& replica,
            UpdateId covered_through);

  /// Returns a deep copy of `view`'s latest checkpoint, or nullopt if
  /// none was ever saved.
  std::optional<VmCheckpoint> Load(const std::string& view) const;

  /// Appends an emitted action list to `view`'s outbox.
  void AppendAl(const std::string& view, const ActionList& al);

  /// Label of the last AL in `view`'s outbox (kInvalidUpdate if empty).
  UpdateId LastAlLabel(const std::string& view) const;

  /// All of `view`'s outbox entries with label > after, in label order.
  std::vector<ActionList> AlsAfter(const std::string& view,
                                   UpdateId after) const;

  int64_t checkpoints_saved() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, VmCheckpoint> checkpoints_;
  std::map<std::string, std::vector<ActionList>> outbox_;
  int64_t checkpoints_saved_ = 0;
};

}  // namespace mvc
