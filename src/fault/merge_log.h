// Write-ahead log for a merge process.
//
// The merge process appends an entry for every input it consumes (REL
// sets, action lists, timer-driven batch flushes, commit acks) and every
// warehouse transaction it submits. After a crash, replaying the input
// entries through a fresh merge engine rebuilds the VUT exactly — the
// engine is deterministic, so the replayed run re-generates the same
// warehouse transactions in the same order, letting the recovered
// process resume without double-applying or skipping a transaction.
// Submit entries are not replayed (the transactions were already sent);
// they exist so tests can audit the emitted sequence for gaps and
// duplicates.
//
// Mutex-guarded so the log can back ThreadRuntime runs.

#pragma once

#include <cstdint>
#include <mutex>  // mvc-lint: allow-sync -- durable state shared with ThreadRuntime workers
#include <string>
#include <vector>

#include "net/protocol.h"

namespace mvc {

/// One logged merge-process event, in processing order.
struct MergeLogEntry {
  enum class Kind : uint8_t {
    kRel = 0,         // consumed REL_i
    kActionList = 1,  // consumed AL^x_j
    kFlush = 2,       // timer-driven batch flush (kBatched policy)
    kSubmit = 3,      // sent a warehouse transaction (audit only)
    kAck = 4,         // observed a commit acknowledgement
  };

  Kind kind;
  /// kRel: the update id. Otherwise unused.
  UpdateId update_id = kInvalidUpdate;
  /// kRel: REL_i restricted to this merge's views.
  std::vector<ViewId> views;
  /// kActionList: the consumed list.
  ActionList al;
  /// kSubmit: the submitted transaction.
  WarehouseTransaction txn;
  /// kSubmit / kAck: the transaction id.
  int64_t txn_id = 0;

  std::string ToString() const;
};

/// Append-only log for one merge process.
class MergeLog {
 public:
  void Append(MergeLogEntry entry);

  /// Snapshot of all entries in append order.
  std::vector<MergeLogEntry> Snapshot() const;

  int64_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<MergeLogEntry> entries_;
};

}  // namespace mvc
