#include "fault/checkpoint_store.h"

namespace mvc {

void CheckpointStore::Save(const std::string& view, const Catalog& replica,
                           UpdateId covered_through) {
  std::lock_guard<std::mutex> lock(mu_);
  checkpoints_[view] = VmCheckpoint{replica.Clone(), covered_through};
  ++checkpoints_saved_;
}

std::optional<VmCheckpoint> CheckpointStore::Load(
    const std::string& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = checkpoints_.find(view);
  if (it == checkpoints_.end()) return std::nullopt;
  return VmCheckpoint{it->second.replica.Clone(),
                      it->second.covered_through};
}

void CheckpointStore::AppendAl(const std::string& view,
                               const ActionList& al) {
  std::lock_guard<std::mutex> lock(mu_);
  outbox_[view].push_back(al);
}

UpdateId CheckpointStore::LastAlLabel(const std::string& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = outbox_.find(view);
  if (it == outbox_.end() || it->second.empty()) return kInvalidUpdate;
  return it->second.back().update;
}

std::vector<ActionList> CheckpointStore::AlsAfter(const std::string& view,
                                                  UpdateId after) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ActionList> out;
  auto it = outbox_.find(view);
  if (it == outbox_.end()) return out;
  for (const ActionList& al : it->second) {
    if (al.update > after) out.push_back(al);
  }
  return out;
}

int64_t CheckpointStore::checkpoints_saved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_saved_;
}

}  // namespace mvc
