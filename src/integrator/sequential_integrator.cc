#include "integrator/sequential_integrator.h"

#include "common/string_util.h"
#include "query/evaluator.h"

namespace mvc {

Status SequentialIntegrator::RegisterView(const BoundView* view, ViewId id) {
  MVC_CHECK(view != nullptr);
  MVC_CHECK(id >= 0);
  if (views_.count(view->name()) > 0) {
    return Status::AlreadyExists(
        StrCat("view '", view->name(), "' already registered"));
  }
  views_[view->name()] = RegisteredView{id, view};
  return Status::OK();
}

Status SequentialIntegrator::RegisterBaseRelation(const std::string& relation,
                                                  const Schema& schema,
                                                  const Table* initial) {
  MVC_RETURN_IF_ERROR(replicas_.CreateTable(relation, schema));
  if (initial != nullptr) {
    MVC_ASSIGN_OR_RETURN(Table * replica, replicas_.GetTable(relation));
    Status st;
    initial->ForEachRow([&](const Tuple& t, int64_t c) {
      if (st.ok()) st = replica->Insert(t, c);
    });
    MVC_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

void SequentialIntegrator::OnMessage(ProcessId from, MessagePtr msg) {
  (void)from;
  switch (msg->kind) {
    case Message::Kind::kSourceTxn: {
      auto* txn_msg = static_cast<SourceTxnMsg*>(msg.get());
      const UpdateId id = ++next_update_;
      if (observer_) observer_(id, txn_msg->txn);
      queue_.emplace_back(id, std::move(txn_msg->txn));
      TryProcessNext();
      return;
    }
    case Message::Kind::kTick: {
      // Simulated computation finished: submit the prepared transaction
      // (or, if it carried no view changes, move straight on).
      if (has_prepared_) {
        auto wt = std::make_unique<WarehouseTxnMsg>();
        wt->txn = std::move(prepared_);
        has_prepared_ = false;
        Send(warehouse_, std::move(wt));
        // busy_ stays set until the commit acknowledgement.
      } else {
        busy_ = false;
        TryProcessNext();
      }
      return;
    }
    case Message::Kind::kTxnCommitted: {
      busy_ = false;
      TryProcessNext();
      return;
    }
    default:
      MVC_LOG_ERROR() << "sequential integrator: unexpected message "
                      << msg->Summary();
  }
}

void SequentialIntegrator::TryProcessNext() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  auto [update_id, txn] = std::move(queue_.front());
  queue_.pop_front();

  // Compute every affected view's delta sequentially against the replica
  // state as of update_id - 1, telescoping update by update within the
  // transaction.
  std::map<std::string, TableDelta> view_deltas;
  TimeMicros cost = options_.process_delay;
  TableProviderFn provider = CatalogProvider(&replicas_);
  for (const Update& u : txn.updates) {
    TableDelta base = ViewEvaluator::UpdateToBaseDelta(u);
    for (const auto& [name, rv] : views_) {
      if (!rv.view->RelationIndex(u.relation).has_value()) continue;
      auto delta = ViewEvaluator::EvaluateDelta(*rv.view, u.relation, base,
                                                provider);
      MVC_CHECK(delta.ok()) << delta.status().ToString();
      cost += options_.delta_cost;
      TableDelta& acc = view_deltas[name];
      acc.target = name;
      for (DeltaRow& row : delta->rows) acc.rows.push_back(std::move(row));
    }
    // Advance the replica past this update.
    auto replica = replicas_.GetTable(u.relation);
    MVC_CHECK(replica.ok()) << replica.status().ToString();
    Status st = ViewEvaluator::UpdateToBaseDelta(u).ApplyTo(*replica);
    MVC_CHECK(st.ok()) << st.ToString();
  }

  WarehouseTransaction wt;
  wt.txn_id = update_id;
  wt.rows = {update_id};
  wt.source_state = update_id;
  for (auto& [name, delta] : view_deltas) {
    delta.Normalize();
    ActionList al;
    al.view = views_.at(name).id;
    al.update = update_id;
    al.first_update = update_id;
    al.covered = {update_id};
    al.delta = std::move(delta);
    wt.views.push_back(al.view);
    wt.actions.push_back(std::move(al));
  }

  if (wt.actions.empty()) {
    has_prepared_ = false;
  } else {
    prepared_ = std::move(wt);
    has_prepared_ = true;
  }
  // Model the serialized computation time, then submit.
  ScheduleSelf(std::make_unique<TickMsg>(), cost);
}

}  // namespace mvc
