#include "integrator/integrator.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/relevance.h"

namespace mvc {

Status IntegratorProcess::RegisterView(const BoundView* view, ViewId id,
                                       ProcessId view_manager,
                                       ProcessId merge) {
  MVC_CHECK(view != nullptr);
  MVC_CHECK(id >= 0);
  if (views_.count(id) > 0) {
    return Status::AlreadyExists(
        StrCat("view '", view->name(), "' already registered"));
  }
  views_[id] = ViewRoute{view, view_manager, merge};
  return Status::OK();
}

void IntegratorProcess::EnableObservability(obs::MetricsRegistry* metrics,
                                            obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) return;
  m_sequenced_ = metrics->RegisterCounter("integrator.updates_sequenced");
  m_rel_size_ = metrics->RegisterHistogram("integrator.rel_size", "views");
  m_backlog_ = metrics->RegisterGauge(
      StrCat("ingest.shard_backlog{process=\"", name(), "\"}"));
}

void IntegratorProcess::OnMessage(ProcessId from, MessagePtr msg) {
  if (msg->kind == Message::Kind::kReplayRequest) {
    HandleReplayRequest(from, *static_cast<ReplayRequestMsg*>(msg.get()));
    return;
  }
  if (msg->kind == Message::Kind::kRelResyncRequest) {
    HandleRelResyncRequest(from,
                           *static_cast<RelResyncRequestMsg*>(msg.get()));
    return;
  }
  if (msg->kind == Message::Kind::kTick) {
    // A modeled sequencing slot elapsed: number the queued transaction.
    auto* tick = static_cast<TickMsg*>(msg.get());
    auto it = sequencing_queue_.find(tick->tag);
    MVC_CHECK(it != sequencing_queue_.end());
    SourceTransaction queued = std::move(it->second);
    sequencing_queue_.erase(it);
    UpdateBacklogGauge();
    ProcessTransaction(std::move(queued));
    return;
  }
  if (msg->kind != Message::Kind::kSourceTxn) {
    MVC_LOG_ERROR() << "integrator: unexpected message " << msg->Summary();
    return;
  }
  auto* txn_msg = static_cast<SourceTxnMsg*>(msg.get());
  SourceTransaction txn = std::move(txn_msg->txn);

  if (txn.global_txn_id != 0) {
    // Section 6.2: collect all per-source parts, then treat the union as
    // one atomic unit. Under sharding every participant source routes to
    // this shard (the shard plan co-locates them), so the parts all
    // arrive here.
    auto& parts = pending_global_[txn.global_txn_id];
    parts.push_back(txn);
    if (static_cast<int32_t>(parts.size()) < txn.global_participants) {
      UpdateBacklogGauge();
      return;  // wait for the remaining sources
    }
    SourceTransaction merged;
    merged.global_txn_id = txn.global_txn_id;
    merged.local_seq = 0;
    for (const SourceTransaction& part : parts) {
      merged.updates.insert(merged.updates.end(), part.updates.begin(),
                            part.updates.end());
    }
    pending_global_.erase(txn.global_txn_id);
    UpdateBacklogGauge();
    Admit(std::move(merged));
    return;
  }
  Admit(std::move(txn));
}

void IntegratorProcess::UpdateBacklogGauge() {
  if (m_backlog_ != nullptr) {
    m_backlog_->Set(static_cast<int64_t>(pending_global_.size() +
                                         sequencing_queue_.size()));
  }
}

void IntegratorProcess::Admit(SourceTransaction txn) {
  if (options_.sequencing_cost_us <= 0) {
    ProcessTransaction(std::move(txn));
    return;
  }
  // Serial-server model: the sequencer works off its queue one
  // transaction per sequencing_cost_us; the tick fires when this
  // transaction's slot completes. Slot deadlines strictly ascend, so
  // FIFO admission order is preserved.
  const TimeMicros start = std::max(busy_until_, Now());
  busy_until_ = start + options_.sequencing_cost_us;
  const int64_t ticket = ++next_seq_ticket_;
  sequencing_queue_.emplace(ticket, std::move(txn));
  UpdateBacklogGauge();
  auto tick = std::make_unique<TickMsg>();
  tick->tag = ticket;
  ScheduleSelf(std::move(tick), busy_until_ - Now());
}

void IntegratorProcess::ProcessTransaction(SourceTransaction txn) {
  // The shard-local epoch always advances; the global update number
  // comes from the shared ticketer when sharded. The mutation drops the
  // cross-shard ticket and stamps the shard-local epoch as the global
  // number — with several shards this collides update ids, which the
  // checker must (and does) catch as a total-order violation.
  const UpdateId epoch = ++next_update_;
  UpdateId update_id = epoch;
  if (ticketer_ != nullptr && !options_.mutation_drop_ticket) {
    update_id = ticketer_->Take();
  }
  txn.shard = shard_;
  txn.shard_epoch = epoch;
  if (observer_) observer_(update_id, txn);

  // REL_i: views affected by any update in the transaction.
  std::vector<ViewId> rel;
  for (const auto& [id, route] : views_) {
    bool relevant = false;
    for (const Update& u : txn.updates) {
      if (options_.relevance_pruning) {
        relevant = UpdateIsRelevant(*route.view, u);
      } else {
        relevant = route.view->RelationIndex(u.relation).has_value();
      }
      if (relevant) break;
    }
    if (relevant) rel.push_back(id);
  }

  if (options_.retain_for_replay) {
    retained_.push_back(RetainedUpdate{update_id, txn, rel});
  }

  if (m_sequenced_ != nullptr) {
    m_sequenced_->Add();
    m_rel_size_->Record(static_cast<int64_t>(rel.size()));
  }
  if (tracer_ != nullptr) {
    tracer_->Record(obs::Span{obs::SpanKind::kSequenced, update_id,
                              kInvalidView, -1,
                              static_cast<int64_t>(rel.size()), Now(),
                              name()});
  }

  // Deliver REL_i to each merge process owning at least one affected
  // view, restricted to its own views (distributed merge, Section 6.1).
  // Under the piggyback scheme the first view manager per merge group
  // carries the REL instead.
  std::map<ProcessId, std::vector<ViewId>> rel_by_merge;
  for (ViewId view : rel) {
    rel_by_merge[views_[view].merge].push_back(view);
  }
  if (!options_.piggyback_rel) {
    if (rel_by_merge.empty() && options_.report_empty_rel) {
      // No view affected: report the empty row to every merge process so
      // each can advance its freshness accounting and purge immediately.
      // A shard reports only to the merges it owns — every merge must
      // hear from exactly one shard to keep its REL stream FIFO-ordered.
      std::set<ProcessId> merges;
      if (restrict_broadcast_) {
        merges.insert(broadcast_merges_.begin(), broadcast_merges_.end());
      } else {
        for (const auto& [id, route] : views_) merges.insert(route.merge);
      }
      for (ProcessId merge : merges) {
        auto rel_msg = std::make_unique<RelSetMsg>();
        rel_msg->update_id = update_id;
        rel_msg->shard = shard_;
        SendAfter(merge, std::move(rel_msg), options_.process_delay);
      }
    } else {
      for (const auto& [merge, views] : rel_by_merge) {
        auto rel_msg = std::make_unique<RelSetMsg>();
        rel_msg->update_id = update_id;
        rel_msg->shard = shard_;
        rel_msg->views = views;
        SendAfter(merge, std::move(rel_msg), options_.process_delay);
      }
    }
  }

  // Copy of U_i to each relevant view manager. Several views may share
  // one manager process (self-maintaining group managers); each process
  // gets exactly one copy.
  std::set<ProcessId> carried;  // merge groups whose REL was assigned
  std::set<ProcessId> sent;
  for (ViewId view : rel) {
    const ViewRoute& route = views_[view];
    if (!sent.insert(route.view_manager).second) continue;
    auto update_msg = std::make_unique<UpdateMsg>();
    update_msg->update_id = update_id;
    update_msg->shard = shard_;
    update_msg->txn = txn;
    if (options_.piggyback_rel && carried.insert(route.merge).second) {
      // First view manager in this merge group forwards REL_i.
      update_msg->carries_rel = true;
      update_msg->rel_views = rel_by_merge[route.merge];
    }
    SendAfter(route.view_manager, std::move(update_msg),
              options_.process_delay);
  }
}

void IntegratorProcess::HandleReplayRequest(ProcessId from,
                                            const ReplayRequestMsg& req) {
  // Resend the view-relevant tail of the update stream to a recovering
  // view manager. FIFO makes the response complete: any update numbered
  // after it was generated will also arrive after it on this channel.
  auto resp = std::make_unique<ReplayResponseMsg>();
  resp->epoch = req.epoch;
  for (const RetainedUpdate& ru : retained_) {
    if (ru.id <= req.after) continue;
    if (std::find(ru.rel.begin(), ru.rel.end(), req.view) == ru.rel.end()) {
      continue;
    }
    resp->updates.push_back(ReplayedUpdate{ru.id, ru.txn});
  }
  Send(from, std::move(resp));
}

void IntegratorProcess::HandleRelResyncRequest(
    ProcessId from, const RelResyncRequestMsg& req) {
  // Reconstruct exactly the REL stream this merge process would have
  // been sent after `after`: each REL restricted to the merge's own
  // views, plus the empty-REL broadcasts when nothing was affected.
  auto resp = std::make_unique<RelResyncResponseMsg>();
  resp->epoch = req.epoch;
  for (const RetainedUpdate& ru : retained_) {
    if (ru.id <= req.after) continue;
    RelEntry entry;
    entry.update_id = ru.id;
    for (ViewId view : ru.rel) {
      if (views_[view].merge == from) entry.views.push_back(view);
    }
    if (!entry.views.empty() ||
        (ru.rel.empty() && options_.report_empty_rel)) {
      resp->rels.push_back(std::move(entry));
    }
  }
  Send(from, std::move(resp));
}

}  // namespace mvc
