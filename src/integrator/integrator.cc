#include "integrator/integrator.h"

#include <set>

#include "common/string_util.h"
#include "query/relevance.h"

namespace mvc {

Status IntegratorProcess::RegisterView(const BoundView* view,
                                       ProcessId view_manager,
                                       ProcessId merge) {
  MVC_CHECK(view != nullptr);
  if (views_.count(view->name()) > 0) {
    return Status::AlreadyExists(
        StrCat("view '", view->name(), "' already registered"));
  }
  views_[view->name()] = ViewRoute{view, view_manager, merge};
  return Status::OK();
}

void IntegratorProcess::OnMessage(ProcessId from, MessagePtr msg) {
  (void)from;
  if (msg->kind != Message::Kind::kSourceTxn) {
    MVC_LOG_ERROR() << "integrator: unexpected message " << msg->Summary();
    return;
  }
  auto* txn_msg = static_cast<SourceTxnMsg*>(msg.get());
  SourceTransaction txn = std::move(txn_msg->txn);

  if (txn.global_txn_id != 0) {
    // Section 6.2: collect all per-source parts, then treat the union as
    // one atomic unit.
    auto& parts = pending_global_[txn.global_txn_id];
    parts.push_back(txn);
    if (static_cast<int32_t>(parts.size()) < txn.global_participants) {
      return;  // wait for the remaining sources
    }
    SourceTransaction merged;
    merged.global_txn_id = txn.global_txn_id;
    merged.local_seq = 0;
    for (const SourceTransaction& part : parts) {
      merged.updates.insert(merged.updates.end(), part.updates.begin(),
                            part.updates.end());
    }
    pending_global_.erase(txn.global_txn_id);
    ProcessTransaction(merged);
    return;
  }
  ProcessTransaction(txn);
}

void IntegratorProcess::ProcessTransaction(const SourceTransaction& txn) {
  const UpdateId update_id = ++next_update_;
  if (observer_) observer_(update_id, txn);

  // REL_i: views affected by any update in the transaction.
  std::vector<std::string> rel;
  for (const auto& [name, route] : views_) {
    bool relevant = false;
    for (const Update& u : txn.updates) {
      if (options_.relevance_pruning) {
        relevant = UpdateIsRelevant(*route.view, u);
      } else {
        relevant = route.view->RelationIndex(u.relation).has_value();
      }
      if (relevant) break;
    }
    if (relevant) rel.push_back(name);
  }

  // Deliver REL_i to each merge process owning at least one affected
  // view, restricted to its own views (distributed merge, Section 6.1).
  // Under the piggyback scheme the first view manager per merge group
  // carries the REL instead.
  std::map<ProcessId, std::vector<std::string>> rel_by_merge;
  for (const std::string& view : rel) {
    rel_by_merge[views_[view].merge].push_back(view);
  }
  if (!options_.piggyback_rel) {
    if (rel_by_merge.empty() && options_.report_empty_rel) {
      // No view affected: report the empty row to every merge process so
      // each can advance its freshness accounting and purge immediately.
      std::set<ProcessId> merges;
      for (const auto& [name, route] : views_) merges.insert(route.merge);
      for (ProcessId merge : merges) {
        auto rel_msg = std::make_unique<RelSetMsg>();
        rel_msg->update_id = update_id;
        SendAfter(merge, std::move(rel_msg), options_.process_delay);
      }
    } else {
      for (const auto& [merge, views] : rel_by_merge) {
        auto rel_msg = std::make_unique<RelSetMsg>();
        rel_msg->update_id = update_id;
        rel_msg->views = views;
        SendAfter(merge, std::move(rel_msg), options_.process_delay);
      }
    }
  }

  // Copy of U_i to each relevant view manager.
  std::set<ProcessId> carried;  // merge groups whose REL was assigned
  for (const std::string& view : rel) {
    const ViewRoute& route = views_[view];
    auto update_msg = std::make_unique<UpdateMsg>();
    update_msg->update_id = update_id;
    update_msg->txn = txn;
    if (options_.piggyback_rel && carried.insert(route.merge).second) {
      // First view manager in this merge group forwards REL_i.
      update_msg->carries_rel = true;
      update_msg->rel_views = rel_by_merge[route.merge];
    }
    SendAfter(route.view_manager, std::move(update_msg),
              options_.process_delay);
  }
}

}  // namespace mvc
