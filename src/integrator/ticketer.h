// Cross-shard ticketing for the sharded integrator (ROADMAP item 2,
// extending Section 6.2): each integrator shard sequences the sources
// assigned to it independently, but draws the global update number U_i
// from one shared ticket counter. The union of all shards' update
// streams therefore remains densely, totally ordered, which is exactly
// what the consistency checker's legality rule needs to order commits
// that touch intertwined views. Per-shard progress is tracked separately
// as a shard-local epoch (IntegratorProcess::num_updates()), so a
// shard's position in its own stream and its position in the global
// order stay distinguishable.
//
// On the deterministic SimRuntime every handler runs on one thread and
// the counter behaves like a plain integer; on the ThreadRuntime the
// fetch-add is the single point of cross-shard synchronization on the
// ingest path — everything else stays message passing.

#pragma once

#include <atomic>  // mvc-lint: allow-sync -- one fetch-add shared by integrator shards is the cross-shard ticket counter

#include "net/protocol.h"

namespace mvc {

class CrossShardTicketer {
 public:
  /// Draws the next global update number (1-based, dense across shards).
  UpdateId Take() {
    return 1 + counter_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Tickets handed out so far.
  int64_t issued() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> counter_{0};
};

}  // namespace mvc
