// The paper's strawman baseline (Section 1.1): a single integrator
// process that handles updates strictly sequentially. For each update it
// computes the changes to all affected views one after another, submits
// one warehouse transaction, waits for the commit acknowledgement, and
// only then moves to the next update.
//
// Trivially MVC-complete (every warehouse transaction carries all of one
// update's view changes, in update order) but with zero concurrency:
// delta-computation time and warehouse round trips serialize. The
// concurrency benchmarks (experiment P3) quantify exactly this.

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "query/view_def.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

struct SequentialIntegratorOptions {
  /// Simulated cost of computing one view's delta for one update. In the
  /// concurrent architecture the same cost is paid by view managers *in
  /// parallel*; here it serializes.
  TimeMicros delta_cost = 0;
  /// Fixed per-update processing overhead.
  TimeMicros process_delay = 0;
};

class SequentialIntegrator : public Process {
 public:
  SequentialIntegrator(std::string name,
                       SequentialIntegratorOptions options = {})
      : Process(std::move(name)), options_(options) {}

  /// Registers a maintained view with its interned id (BoundView must
  /// outlive the process).
  Status RegisterView(const BoundView* view, ViewId id);

  /// Declares a base relation so a local replica can be maintained from
  /// the update stream.
  Status RegisterBaseRelation(const std::string& relation,
                              const Schema& schema,
                              const Table* initial = nullptr);

  void SetWarehouse(ProcessId warehouse) { warehouse_ = warehouse; }

  void SetUpdateObserver(
      std::function<void(UpdateId, const SourceTransaction&)> observer) {
    observer_ = std::move(observer);
  }

  int64_t num_updates() const { return next_update_; }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  void TryProcessNext();

  struct RegisteredView {
    ViewId id;
    const BoundView* view;
  };

  SequentialIntegratorOptions options_;
  std::map<std::string, RegisteredView> views_;
  Catalog replicas_;
  ProcessId warehouse_ = kInvalidProcess;
  std::function<void(UpdateId, const SourceTransaction&)> observer_;

  UpdateId next_update_ = 0;
  std::deque<std::pair<UpdateId, SourceTransaction>> queue_;
  bool busy_ = false;
  /// Transaction prepared for the in-progress update, sent when the
  /// simulated computation delay elapses.
  WarehouseTransaction prepared_;
  bool has_prepared_ = false;
};

}  // namespace mvc
