// The integrator (Figure 1): receives committed transactions from all
// sources, numbers them globally by arrival order, computes the
// relevant-view set REL_i, and fans out:
//   * REL_i to the merge process responsible for each affected view
//     (or, under the alternate scheme of Section 3.2, piggybacked on one
//     of the view managers);
//   * a copy of U_i to every view manager whose view is in REL_i.
//
// Section 6.2 extension: parts of a global transaction (same
// global_txn_id from several sources) are buffered and merged into a
// single atomic unit before numbering.

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "integrator/ticketer.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "query/view_def.h"
#include "storage/id_registry.h"

namespace mvc {

namespace obs {
class MetricsRegistry;
class Tracer;
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

struct IntegratorOptions {
  /// Prune views from REL_i whose selection conditions reject the
  /// updated tuple (Section 3.2 step 2 optimization). When false, REL_i
  /// contains every view whose definition uses an updated relation.
  bool relevance_pruning = true;
  /// Alternate REL delivery (Section 3.2): piggyback REL_i on the first
  /// view manager in the set instead of messaging the merge process
  /// directly. Saves one message per update.
  bool piggyback_rel = false;
  /// Simulated processing time per transaction before fan-out.
  TimeMicros process_delay = 0;
  /// Models the sequencer as a serial server: each transaction occupies
  /// it for this much simulated time before it is numbered, so a single
  /// shard drains its stream at a bounded rate and ingest sharding
  /// yields real simulated-time throughput (bench_ingest_scaling). 0
  /// keeps the legacy instantaneous sequencing.
  TimeMicros sequencing_cost_us = 0;
  /// When true, an empty REL_i is still reported to every merge process
  /// so that freshness accounting sees every update id. SPA/PA purge the
  /// empty row immediately.
  bool report_empty_rel = true;
  /// Keep every numbered transaction (with its REL) so recovering view
  /// managers and merge processes can ask for replays of the tail of
  /// their streams. Enabled by the system wiring when a fault plan is
  /// present.
  bool retain_for_replay = false;
  /// Test-only mutation: stamp updates with the shard-local epoch
  /// instead of the cross-shard ticket. With two or more shards this
  /// reuses global update numbers across shards — exactly the bug the
  /// explorer's ticket-drop self-test must catch. Never set in
  /// production wiring.
  bool mutation_drop_ticket = false;
};

class IntegratorProcess : public Process {
 public:
  IntegratorProcess(std::string name, IntegratorOptions options = {})
      : Process(std::move(name)), options_(options) {}

  /// Registers a view: its analyzed definition, its interned id, the
  /// view manager that maintains it, and the merge process coordinating
  /// its group. The BoundView must outlive the integrator.
  Status RegisterView(const BoundView* view, ViewId id,
                      ProcessId view_manager, ProcessId merge);

  /// Makes this integrator one shard of a sharded ingest pipeline:
  /// update numbers come from the shared ticketer instead of the local
  /// counter, and outgoing updates are stamped with `shard` plus the
  /// shard-local epoch. The ticketer must outlive the process. Without
  /// this call the integrator is the single global sequencer, exactly
  /// as before.
  void SetShard(int32_t shard, CrossShardTicketer* ticketer) {
    MVC_CHECK(ticketer != nullptr);
    shard_ = shard;
    ticketer_ = ticketer;
  }

  /// Restricts the empty-REL broadcast to the merge processes whose
  /// groups this shard owns. Under sharding every merge must receive
  /// its REL stream from exactly one shard — per-channel FIFO then
  /// keeps the (gappy) ticket sequence monotone, which is what the
  /// merge's VUT expects. Without this call the broadcast reaches every
  /// registered merge (the unsharded behavior).
  void SetBroadcastMerges(std::vector<ProcessId> merges) {
    broadcast_merges_ = std::move(merges);
    restrict_broadcast_ = true;
  }

  /// Observer invoked with every globally numbered transaction; the
  /// consistency oracle uses it to reconstruct the source state
  /// sequence.
  void SetUpdateObserver(
      std::function<void(UpdateId, const SourceTransaction&)> observer) {
    observer_ = std::move(observer);
  }

  /// Wires the observability hub (before the runtime starts): the
  /// sequencing of every update emits a kSequenced span carrying |REL_i|
  /// plus the integrator.updates_sequenced / integrator.rel_size
  /// instruments. Either pointer may be null.
  void EnableObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  /// Number of transactions numbered by this process. For a shard this
  /// is the shard-local epoch, not the global ticket count.
  int64_t num_updates() const { return next_update_; }

  /// Shard index (0 when unsharded).
  int32_t shard() const { return shard_; }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  /// Sequences the transaction now (sequencing_cost_us == 0) or queues
  /// it behind the modeled serial sequencer.
  void Admit(SourceTransaction txn);
  void UpdateBacklogGauge();
  void ProcessTransaction(SourceTransaction txn);
  void HandleReplayRequest(ProcessId from, const ReplayRequestMsg& req);
  void HandleRelResyncRequest(ProcessId from,
                              const RelResyncRequestMsg& req);

  struct ViewRoute {
    const BoundView* view;
    ProcessId view_manager;
    ProcessId merge;
  };

  /// One numbered transaction kept for crash recovery.
  struct RetainedUpdate {
    UpdateId id;
    SourceTransaction txn;
    /// REL_i (all affected views, sorted by id).
    std::vector<ViewId> rel;
  };

  IntegratorOptions options_;
  /// Ordered by view id (= wiring order) for deterministic fan-out.
  std::map<ViewId, ViewRoute> views_;
  /// Shard-local epoch: transactions this process has numbered. Doubles
  /// as the global update number when unsharded.
  UpdateId next_update_ = 0;
  int32_t shard_ = 0;
  /// Shared global ticket counter; nullptr when unsharded.
  CrossShardTicketer* ticketer_ = nullptr;
  /// Empty-REL broadcast targets when restricted (sharded wiring).
  std::vector<ProcessId> broadcast_merges_;
  bool restrict_broadcast_ = false;
  /// Buffered parts of in-flight global transactions, keyed by id.
  std::map<int64_t, std::vector<SourceTransaction>> pending_global_;
  /// Serial-sequencer model (sequencing_cost_us > 0): transactions
  /// waiting for their modeled service slot, keyed by tick ticket.
  std::map<int64_t, SourceTransaction> sequencing_queue_;
  /// Simulated time the modeled sequencer frees up.
  TimeMicros busy_until_ = 0;
  int64_t next_seq_ticket_ = 0;
  std::function<void(UpdateId, const SourceTransaction&)> observer_;
  /// Append-only when retain_for_replay; ids are 1..next_update_.
  std::vector<RetainedUpdate> retained_;
  // --- Observability (all null when disabled) ---
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_sequenced_ = nullptr;
  obs::Histogram* m_rel_size_ = nullptr;
  /// ingest.shard_backlog: global-transaction parts awaiting their
  /// remaining sources plus transactions queued behind the modeled
  /// serial sequencer.
  obs::Gauge* m_backlog_ = nullptr;
};

}  // namespace mvc
