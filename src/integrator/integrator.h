// The integrator (Figure 1): receives committed transactions from all
// sources, numbers them globally by arrival order, computes the
// relevant-view set REL_i, and fans out:
//   * REL_i to the merge process responsible for each affected view
//     (or, under the alternate scheme of Section 3.2, piggybacked on one
//     of the view managers);
//   * a copy of U_i to every view manager whose view is in REL_i.
//
// Section 6.2 extension: parts of a global transaction (same
// global_txn_id from several sources) are buffered and merged into a
// single atomic unit before numbering.

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "query/view_def.h"
#include "storage/id_registry.h"

namespace mvc {

namespace obs {
class MetricsRegistry;
class Tracer;
class Counter;
class Histogram;
}  // namespace obs

struct IntegratorOptions {
  /// Prune views from REL_i whose selection conditions reject the
  /// updated tuple (Section 3.2 step 2 optimization). When false, REL_i
  /// contains every view whose definition uses an updated relation.
  bool relevance_pruning = true;
  /// Alternate REL delivery (Section 3.2): piggyback REL_i on the first
  /// view manager in the set instead of messaging the merge process
  /// directly. Saves one message per update.
  bool piggyback_rel = false;
  /// Simulated processing time per transaction before fan-out.
  TimeMicros process_delay = 0;
  /// When true, an empty REL_i is still reported to every merge process
  /// so that freshness accounting sees every update id. SPA/PA purge the
  /// empty row immediately.
  bool report_empty_rel = true;
  /// Keep every numbered transaction (with its REL) so recovering view
  /// managers and merge processes can ask for replays of the tail of
  /// their streams. Enabled by the system wiring when a fault plan is
  /// present.
  bool retain_for_replay = false;
};

class IntegratorProcess : public Process {
 public:
  IntegratorProcess(std::string name, IntegratorOptions options = {})
      : Process(std::move(name)), options_(options) {}

  /// Registers a view: its analyzed definition, its interned id, the
  /// view manager that maintains it, and the merge process coordinating
  /// its group. The BoundView must outlive the integrator.
  Status RegisterView(const BoundView* view, ViewId id,
                      ProcessId view_manager, ProcessId merge);

  /// Observer invoked with every globally numbered transaction; the
  /// consistency oracle uses it to reconstruct the source state
  /// sequence.
  void SetUpdateObserver(
      std::function<void(UpdateId, const SourceTransaction&)> observer) {
    observer_ = std::move(observer);
  }

  /// Wires the observability hub (before the runtime starts): the
  /// sequencing of every update emits a kSequenced span carrying |REL_i|
  /// plus the integrator.updates_sequenced / integrator.rel_size
  /// instruments. Either pointer may be null.
  void EnableObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  /// Number of transactions numbered so far.
  int64_t num_updates() const { return next_update_; }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  void ProcessTransaction(const SourceTransaction& txn);
  void HandleReplayRequest(ProcessId from, const ReplayRequestMsg& req);
  void HandleRelResyncRequest(ProcessId from,
                              const RelResyncRequestMsg& req);

  struct ViewRoute {
    const BoundView* view;
    ProcessId view_manager;
    ProcessId merge;
  };

  /// One numbered transaction kept for crash recovery.
  struct RetainedUpdate {
    UpdateId id;
    SourceTransaction txn;
    /// REL_i (all affected views, sorted by id).
    std::vector<ViewId> rel;
  };

  IntegratorOptions options_;
  /// Ordered by view id (= wiring order) for deterministic fan-out.
  std::map<ViewId, ViewRoute> views_;
  UpdateId next_update_ = 0;
  /// Buffered parts of in-flight global transactions, keyed by id.
  std::map<int64_t, std::vector<SourceTransaction>> pending_global_;
  std::function<void(UpdateId, const SourceTransaction&)> observer_;
  /// Append-only when retain_for_replay; ids are 1..next_update_.
  std::vector<RetainedUpdate> retained_;
  // --- Observability (all null when disabled) ---
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_sequenced_ = nullptr;
  obs::Histogram* m_rel_size_ = nullptr;
};

}  // namespace mvc
