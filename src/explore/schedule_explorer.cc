#include "explore/schedule_explorer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "net/exploring_runtime.h"

namespace mvc {

namespace {

/// Identity of one enabled transition, stable across re-executions of
/// the same prefix: the channel plus the head message's global send
/// sequence number.
struct TransitionId {
  uint64_t channel = 0;
  uint64_t seq = 0;

  bool operator<(const TransitionId& o) const {
    return channel != o.channel ? channel < o.channel : seq < o.seq;
  }
  bool operator==(const TransitionId& o) const {
    return channel == o.channel && seq == o.seq;
  }

  ProcessId target() const {
    return static_cast<ProcessId>(channel & 0xffffffffu);
  }
};

TransitionId IdOf(const ChoicePoint& c) {
  return TransitionId{
      (static_cast<uint64_t>(static_cast<uint32_t>(c.from)) << 32) |
          static_cast<uint32_t>(c.to),
      c.msg_seq};
}

/// Two deliveries commute iff they target different processes: an
/// actor's handler reads/writes only its own state and appends only to
/// its own outgoing channels, so swapping the order of deliveries to
/// distinct actors reaches the same state.
bool Independent(const TransitionId& a, const TransitionId& b) {
  return a.target() != b.target();
}

/// One DFS level: the enabled transitions of the state (deterministic
/// order), the sleep set on entry (grows with explored siblings), the
/// branch currently taken, and the delay cost spent on the prefix above.
struct Frame {
  std::vector<TransitionId> enabled;
  std::set<TransitionId> sleep;
  size_t chosen = 0;
  int cost_base = 0;
};

Status RunPrefixOracle(const WarehouseSystem& system, CheckLevel level) {
  switch (level) {
    case CheckLevel::kComplete:
      return system.MakeChecker().CheckPrefix(system.recorder(),
                                              /*require_single_steps=*/true);
    case CheckLevel::kStrong:
      return system.MakeChecker().CheckPrefix(system.recorder(),
                                              /*require_single_steps=*/false);
    case CheckLevel::kConvergent:
    case CheckLevel::kNone:
      // Convergence constrains only the final state; nothing to say
      // about prefixes.
      return Status::OK();
  }
  return Status::OK();
}

Status RunFinalOracle(const WarehouseSystem& system, CheckLevel level) {
  switch (level) {
    case CheckLevel::kComplete:
      return system.MakeChecker().CheckComplete(system.recorder());
    case CheckLevel::kStrong:
      return system.MakeChecker().CheckStrong(system.recorder());
    case CheckLevel::kConvergent:
      return system.MakeChecker().CheckConvergent(system.recorder());
    case CheckLevel::kNone:
      return Status::OK();
  }
  return Status::OK();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* CheckLevelToString(CheckLevel level) {
  switch (level) {
    case CheckLevel::kNone:
      return "none";
    case CheckLevel::kConvergent:
      return "convergent";
    case CheckLevel::kStrong:
      return "strong";
    case CheckLevel::kComplete:
      return "complete";
  }
  return "?";
}

bool ParseCheckLevel(const std::string& text, CheckLevel* out) {
  for (CheckLevel level : {CheckLevel::kNone, CheckLevel::kConvergent,
                           CheckLevel::kStrong, CheckLevel::kComplete}) {
    if (text == CheckLevelToString(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

CheckLevel DeriveCheckLevel(const SystemConfig& config) {
  bool any_convergent = false;
  bool all_complete = true;
  // Self-maintaining group managers emit complete-level action lists for
  // every view (Build rejects any other manager_kinds with them).
  if (!config.maint.self_maintain) {
    for (const ViewDefinition& view : config.views) {
      ManagerKind kind = ManagerKind::kComplete;
      auto it = config.manager_kinds.find(view.name);
      if (it != config.manager_kinds.end()) kind = it->second;
      // Aggregate views always get an AggregateViewManager (batching).
      if (config.aggregates.count(view.name) > 0) kind = ManagerKind::kStrong;
      if (kind == ManagerKind::kConvergent) any_convergent = true;
      if (kind != ManagerKind::kComplete) all_complete = false;
    }
  }
  if (any_convergent) return CheckLevel::kConvergent;
  if (!config.auto_algorithm &&
      config.merge.algorithm == MergeAlgorithm::kPassThrough) {
    return CheckLevel::kConvergent;
  }
  // Complete managers + SPA + unbatched submission promise MVC-complete;
  // batching or PA make the warehouse advance by several updates at
  // once, so strong is the claim.
  if (all_complete && config.merge.policy != SubmissionPolicy::kBatched &&
      (config.auto_algorithm ||
       config.merge.algorithm == MergeAlgorithm::kSPA)) {
    return CheckLevel::kComplete;
  }
  return CheckLevel::kStrong;
}

std::string ExploreReport::ToJson() const {
  std::ostringstream os;
  os << "{\"executions\":" << executions << ",\"deliveries\":" << deliveries
     << ",\"truncated\":" << truncated << ",\"sleep_skips\":" << sleep_skips
     << ",\"bound_prunes\":" << bound_prunes << ",\"max_depth\":" << max_depth
     << ",\"exhausted\":" << (exhausted ? "true" : "false");
  if (violation.has_value()) {
    os << ",\"violation\":{\"execution\":" << violation->execution
       << ",\"delay_bound\":" << violation->delay_bound
       << ",\"schedule_length\":" << violation->schedule.size()
       << ",\"message\":\"" << JsonEscape(violation->message)
       << "\",\"schedule\":[";
    for (size_t i = 0; i < violation->schedule.size(); ++i) {
      const ScheduleStep& s = violation->schedule[i];
      if (i > 0) os << ",";
      os << "\"" << JsonEscape(StrCat(s.from, " -> ", s.to, " ", s.kind))
         << "\"";
    }
    os << "]}";
  } else {
    os << ",\"violation\":null";
  }
  os << "}";
  return os.str();
}

ScheduleExplorer::ScheduleExplorer(SystemConfig config, ExploreOptions options)
    : config_(std::move(config)), options_(options) {
  config_.use_threads = false;
  if (options_.check != CheckLevel::kNone) config_.record_snapshots = true;
}

Result<ExploreReport> ScheduleExplorer::Explore() {
  if (!options_.iterative_deepening) {
    return ExploreBound(options_.delay_bound, 0);
  }
  ExploreReport total;
  for (int bound = 0; bound <= options_.delay_bound; ++bound) {
    MVC_ASSIGN_OR_RETURN(ExploreReport r,
                         ExploreBound(bound, total.executions));
    total.executions += r.executions;
    total.deliveries += r.deliveries;
    total.truncated += r.truncated;
    total.sleep_skips += r.sleep_skips;
    total.bound_prunes += r.bound_prunes;
    total.max_depth = std::max(total.max_depth, r.max_depth);
    total.exhausted = r.exhausted;
    if (r.violation.has_value()) {
      total.violation = std::move(r.violation);
      break;
    }
    // A fully explored bound with no prunes means larger bounds add no
    // new schedules.
    if (r.exhausted && r.bound_prunes == 0) break;
    if (options_.max_executions > 0 &&
        total.executions >= options_.max_executions) {
      break;
    }
  }
  return total;
}

Result<ExploreReport> ScheduleExplorer::ExploreBound(int bound,
                                                     int64_t execution_base) {
  ExploreReport report;
  std::vector<Frame> stack;

  for (;;) {
    // --- One execution: rebuild the system, replay the frame prefix,
    // then extend it with fresh DFS choices.
    SystemConfig cfg = config_;
    ExploringRuntime* rt = nullptr;
    cfg.runtime_factory =
        [&rt](const SystemConfig&) -> std::unique_ptr<Runtime> {
      auto runtime = std::make_unique<ExploringRuntime>();
      rt = runtime.get();
      return runtime;
    };
    Result<std::unique_ptr<WarehouseSystem>> built =
        WarehouseSystem::Build(std::move(cfg));
    if (!built.ok()) return built.status();
    WarehouseSystem& system = **built;

    size_t depth = 0;
    bool stopped = false;        // scheduler/observer ended the run early
    bool exec_truncated = false; // ... because of the bound or step cap
    Status violation = Status::OK();
    std::vector<ScheduleStep> schedule;
    size_t last_commits = 0;

    rt->SetScheduler([&](const std::vector<ChoicePoint>& enabled) -> int64_t {
      if (depth < stack.size()) {
        // Replay segment: the prefix below the current DFS branch point.
        Frame& f = stack[depth];
        MVC_CHECK_EQ(f.enabled.size(), enabled.size())
            << "non-deterministic rebuild at depth " << depth;
        MVC_CHECK(f.enabled[f.chosen] == IdOf(enabled[f.chosen]))
            << "non-deterministic rebuild at depth " << depth;
        return static_cast<int64_t>(f.chosen);
      }
      // Fresh frame: record this state's choices and take the first
      // branch that is affordable and not slept on.
      Frame f;
      f.enabled.reserve(enabled.size());
      for (const ChoicePoint& c : enabled) f.enabled.push_back(IdOf(c));
      if (!stack.empty()) {
        const Frame& parent = stack.back();
        f.cost_base = parent.cost_base + static_cast<int>(parent.chosen);
        const TransitionId& taken = parent.enabled[parent.chosen];
        for (const TransitionId& slept : parent.sleep) {
          if (Independent(slept, taken)) f.sleep.insert(slept);
        }
      }
      bool found = false;
      for (size_t i = 0; i < f.enabled.size(); ++i) {
        if (f.cost_base + static_cast<int>(i) > bound) {
          ++report.bound_prunes;
          exec_truncated = true;
          break;
        }
        if (options_.sleep_sets && f.sleep.count(f.enabled[i]) > 0) {
          ++report.sleep_skips;
          continue;
        }
        f.chosen = i;
        found = true;
        break;
      }
      if (!found) {
        stopped = true;
        return ExploringRuntime::kStopRun;
      }
      stack.push_back(std::move(f));
      return static_cast<int64_t>(stack.back().chosen);
    });

    rt->SetStepObserver([&](const ChoicePoint& c, int64_t) {
      ++depth;
      ++report.deliveries;
      report.max_depth =
          std::max(report.max_depth, static_cast<int64_t>(depth));
      schedule.push_back(ScheduleStep{
          c.from >= 0 ? rt->process(c.from)->name() : "?",
          rt->process(c.to)->name(),
          MessageKindToString(c.kind)});
      if (static_cast<int64_t>(depth) >= options_.max_steps) {
        stopped = true;
        exec_truncated = true;
        return false;
      }
      // Oracle re-entry: check every prefix that grew the commit chain.
      const size_t commits = system.recorder().commits().size();
      if (commits != last_commits) {
        last_commits = commits;
        Status verdict = RunPrefixOracle(system, options_.check);
        if (!verdict.ok()) {
          violation = verdict;
          stopped = true;
          return false;
        }
      }
      return true;
    });

    system.Run();
    ++report.executions;

    if (!violation.ok()) {
      report.violation = ExploreViolation{
          violation.message(), std::move(schedule),
          execution_base + report.executions - 1, bound};
      return report;
    }
    if (exec_truncated) {
      ++report.truncated;
    } else if (!stopped) {
      // Quiescent: the full-run oracle applies (adds final coverage /
      // convergence on top of the prefix checks).
      Status verdict = RunFinalOracle(system, options_.check);
      if (!verdict.ok()) {
        report.violation = ExploreViolation{
            verdict.message(), std::move(schedule),
            execution_base + report.executions - 1, bound};
        return report;
      }
      if (observer_) observer_(system);
    }

    if (options_.max_executions > 0 &&
        execution_base + report.executions >= options_.max_executions) {
      return report;
    }

    // --- Backtrack to the next unexplored branch.
    bool advanced = false;
    while (!stack.empty() && !advanced) {
      Frame& f = stack.back();
      f.sleep.insert(f.enabled[f.chosen]);
      size_t next = f.chosen + 1;
      while (next < f.enabled.size()) {
        if (f.cost_base + static_cast<int>(next) > bound) {
          ++report.bound_prunes;
          next = f.enabled.size();
          break;
        }
        if (options_.sleep_sets && f.sleep.count(f.enabled[next]) > 0) {
          ++report.sleep_skips;
          ++next;
          continue;
        }
        break;
      }
      if (next < f.enabled.size()) {
        f.chosen = next;
        advanced = true;
      } else {
        stack.pop_back();
      }
    }
    if (!advanced) {
      report.exhausted = true;
      return report;
    }
  }
}

Result<ScheduleExplorer::ReplayResult> ScheduleExplorer::Replay(
    SystemConfig config, const std::vector<ScheduleStep>& schedule,
    CheckLevel check) {
  config.use_threads = false;
  if (check != CheckLevel::kNone) config.record_snapshots = true;
  ExploringRuntime* rt = nullptr;
  config.runtime_factory =
      [&rt](const SystemConfig&) -> std::unique_ptr<Runtime> {
    auto runtime = std::make_unique<ExploringRuntime>();
    rt = runtime.get();
    return runtime;
  };
  MVC_ASSIGN_OR_RETURN(std::unique_ptr<WarehouseSystem> system,
                       WarehouseSystem::Build(std::move(config)));

  ReplayResult result;
  rt->SetTraceSink(
      [&](const std::string& line) { result.trace.push_back(line); });
  size_t next = 0;
  Status match_error = Status::OK();
  rt->SetScheduler([&](const std::vector<ChoicePoint>& enabled) -> int64_t {
    if (next >= schedule.size()) return ExploringRuntime::kStopRun;
    const ScheduleStep& step = schedule[next];
    for (size_t i = 0; i < enabled.size(); ++i) {
      const ChoicePoint& c = enabled[i];
      if (rt->process(c.to)->name() != step.to) continue;
      if (c.from < 0 || rt->process(c.from)->name() != step.from) continue;
      if (MessageKindToString(c.kind) != step.kind) continue;
      ++next;
      return static_cast<int64_t>(i);
    }
    match_error = Status::InvalidArgument(
        StrCat("replay step ", next + 1, " (", step.from, " -> ", step.to,
               " ", step.kind,
               ") matches no enabled delivery; wrong scenario or"
               " non-deterministic config"));
    return ExploringRuntime::kStopRun;
  });
  system->Run();
  if (!match_error.ok()) return match_error;
  if (next < schedule.size()) {
    return Status::InvalidArgument(
        StrCat("system quiesced after ", next, " of ", schedule.size(),
               " replay steps"));
  }
  result.verdict = RunPrefixOracle(*system, check);
  return result;
}

Status WriteCounterexampleFile(const std::string& path,
                               const std::string& scenario_label,
                               CheckLevel check,
                               const ExploreViolation& violation) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(StrCat("cannot write ", path));
  }
  out << "# mvc_explore counterexample\n";
  out << "# scenario: " << scenario_label << "\n";
  out << "# check: " << CheckLevelToString(check) << "\n";
  // Multi-line oracle diagnostics become individual comment lines.
  std::istringstream msg(violation.message);
  std::string line;
  bool first = true;
  while (std::getline(msg, line)) {
    out << (first ? "# violation: " : "#   ") << line << "\n";
    first = false;
  }
  for (const ScheduleStep& step : violation.schedule) {
    out << "deliver " << step.from << " -> " << step.to << " " << step.kind
        << "\n";
  }
  out.flush();
  if (!out) return Status::Internal(StrCat("short write to ", path));
  return Status::OK();
}

Result<std::vector<ScheduleStep>> ReadCounterexampleFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot read ", path));
  std::vector<ScheduleStep> schedule;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword, from, arrow, to, kind;
    fields >> keyword >> from >> arrow >> to >> kind;
    if (keyword != "deliver" || arrow != "->" || kind.empty()) {
      return Status::InvalidArgument(
          StrCat(path, ":", lineno, ": expected 'deliver <from> -> <to>",
                 " <kind>', got '", line, "'"));
    }
    schedule.push_back(ScheduleStep{from, to, kind});
  }
  return schedule;
}

}  // namespace mvc
