// Systematic schedule exploration (the third checking layer, after the
// static lint and TSan — see docs/ANALYSIS.md).
//
// The ScheduleExplorer enumerates message-delivery interleavings of a
// configured warehouse system and runs the ConsistencyChecker as an
// oracle after every delivery. Exploration is stateless-model-checking
// style: the system is rebuilt from its (deterministic) SystemConfig for
// every schedule and driven by an ExploringRuntime whose scheduler
// replays a DFS-chosen prefix, so no component needs snapshot/rollback
// support.
//
// Search space control:
//   * Delay bound. The canonical schedule always delivers the enabled
//     choice with the lowest (sender, receiver) channel; choosing the
//     i-th enabled choice instead costs i "delays". A run's total cost
//     must stay within `delay_bound` — the standard delay-bounding
//     heuristic: most concurrency bugs manifest within a handful of
//     deviations from a canonical order.
//   * Sleep sets. Deliveries to different target processes commute (an
//     actor's handler touches only its own state and its own outgoing
//     channels), so schedules differing only in the order of such
//     deliveries are equivalent; sleep sets prune the re-exploration.
//   * Iterative deepening over the delay bound (on by default) makes the
//     first counterexample found minimal in deviation count.
//
// On violation the explorer reports the exact delivery prefix ending at
// the violating delivery; WriteCounterexampleFile / Replay turn it into
// a replayable artifact and a paper-style trace.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "system/warehouse_system.h"

namespace mvc {

/// Which oracle gates the explored schedules. Mirrors mvc_sim --check.
enum class CheckLevel : uint8_t {
  kNone = 0,
  kConvergent = 1,
  kStrong = 2,
  kComplete = 3,
};

const char* CheckLevelToString(CheckLevel level);
bool ParseCheckLevel(const std::string& text, CheckLevel* out);

/// The strongest level the configuration is expected to satisfy: complete
/// managers + SPA promise MVC-complete, convergent managers or
/// pass-through merging only convergence, everything else MVC-strong.
CheckLevel DeriveCheckLevel(const SystemConfig& config);

struct ExploreOptions {
  /// Maximum total scheduling deviations per execution (see above).
  int delay_bound = 2;
  /// Explore bounds 0..delay_bound in order; the first violation found
  /// then has a minimal number of deviations.
  bool iterative_deepening = true;
  /// Stop after this many executions (0 = unlimited).
  int64_t max_executions = 200000;
  /// Per-execution delivery cap (guards runaway timer loops).
  int64_t max_steps = 10000;
  /// Sleep-set partial-order pruning.
  bool sleep_sets = true;
  /// Oracle level; callers usually pass DeriveCheckLevel(config).
  CheckLevel check = CheckLevel::kStrong;
};

/// One delivery, by process name — stable across re-executions and
/// human-readable in counterexample files.
struct ScheduleStep {
  std::string from;
  std::string to;
  std::string kind;
};

struct ExploreViolation {
  /// The oracle's diagnostic.
  std::string message;
  /// The delivery prefix ending at the violating delivery.
  std::vector<ScheduleStep> schedule;
  /// Index of the violating execution (0-based).
  int64_t execution = 0;
  /// Delay bound at which it surfaced.
  int delay_bound = 0;
};

struct ExploreReport {
  int64_t executions = 0;
  int64_t deliveries = 0;
  /// Executions cut off by max_steps or the delay bound (their suffixes
  /// were not covered).
  int64_t truncated = 0;
  int64_t sleep_skips = 0;
  int64_t bound_prunes = 0;
  int64_t max_depth = 0;
  /// DFS ran out of unexplored schedules within the bound.
  bool exhausted = false;
  std::optional<ExploreViolation> violation;

  std::string ToJson() const;
};

class ScheduleExplorer {
 public:
  /// `config` must be deterministic (it is re-Built per execution);
  /// use_threads is ignored and snapshots are forced on when an oracle
  /// level needs them.
  ScheduleExplorer(SystemConfig config, ExploreOptions options);

  /// Called after every violation-free execution that ran to quiescence,
  /// with the finished system (final warehouse contents, stats).
  using ExecutionObserver = std::function<void(const WarehouseSystem&)>;
  void SetExecutionObserver(ExecutionObserver observer) {
    observer_ = std::move(observer);
  }

  Result<ExploreReport> Explore();

  struct ReplayResult {
    /// Oracle verdict on the replayed prefix.
    Status verdict = Status::OK();
    /// Paper-style trace, one line per delivery.
    std::vector<std::string> trace;
  };

  /// Re-executes one recorded schedule against a fresh system and
  /// returns the oracle's verdict on the resulting prefix. Errors if the
  /// schedule does not match any enabled delivery (wrong scenario or a
  /// non-deterministic config).
  static Result<ReplayResult> Replay(SystemConfig config,
                                     const std::vector<ScheduleStep>& schedule,
                                     CheckLevel check);

 private:
  Result<ExploreReport> ExploreBound(int bound, int64_t execution_base);

  SystemConfig config_;
  ExploreOptions options_;
  ExecutionObserver observer_;
};

/// Counterexample files: '#' comment lines followed by one
/// "deliver <from> -> <to> <kind>" line per delivery.
Status WriteCounterexampleFile(const std::string& path,
                               const std::string& scenario_label,
                               CheckLevel check,
                               const ExploreViolation& violation);
Result<std::vector<ScheduleStep>> ReadCounterexampleFile(
    const std::string& path);

}  // namespace mvc
