#include "compact/compaction_policy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "compact/chunk_squash.h"

namespace mvc {

const char* CompactionKindToString(CompactionKind kind) {
  switch (kind) {
    case CompactionKind::kCollapseVersions:
      return "collapse";
    case CompactionKind::kSquashChunks:
      return "squash";
  }
  return "?";
}

std::string CompactionSpec::ToString() const {
  if (kind == CompactionKind::kCollapseVersions) {
    std::string ids;
    for (size_t i = 0; i < victims.size(); ++i) {
      if (i > 0) ids += ",";
      ids += StrCat(victims[i]);
    }
    return StrCat("collapse{", ids, "}");
  }
  return StrCat("squash{@", commit_id, " ", table, "}");
}

std::string CompactionSpec::Key() const {
  if (kind == CompactionKind::kCollapseVersions) {
    // The first victim identifies the batch: batches are planned over
    // disjoint ascending ranges.
    return StrCat("c/", victims.empty() ? -1 : victims.front());
  }
  return StrCat("s/", commit_id, "/", table);
}

TieredCompactionPolicy::TieredCompactionPolicy(TieredCompactionOptions options)
    : options_(options) {
  MVC_CHECK(options_.hot_window >= 1) << "hot_window must be >= 1";
  MVC_CHECK(options_.tier_base >= 2) << "tier_base must be >= 2";
  MVC_CHECK(options_.rows_per_chunk >= 1) << "rows_per_chunk must be >= 1";
}

bool TieredCompactionPolicy::IsKeeper(int64_t commit, int64_t latest) const {
  const int64_t age = latest - commit;
  if (age < options_.hot_window) return true;
  // Find the tier: tier t covers ages [hot*base^t, hot*base^{t+1}) and
  // keeps commits divisible by base^{t+1}. Deeper tiers demand
  // divisibility by a multiple of shallower tiers' spacing, so a
  // version's keeper status can only decay as it ages — never flip back.
  int64_t spacing = options_.tier_base;
  int64_t tier_floor = options_.hot_window;
  while (age >= tier_floor * options_.tier_base &&
         spacing <= (int64_t{1} << 61) / options_.tier_base) {
    tier_floor *= options_.tier_base;
    spacing *= options_.tier_base;
  }
  return commit % spacing == 0;
}

std::vector<CompactionSpec> TieredCompactionPolicy::Plan(
    const StoreStats& stats) {
  std::vector<CompactionSpec> specs;
  if (stats.latest_commit < 0) return specs;

  // Tiered retention: batch the non-keepers (oldest first) into bounded
  // collapse specs. Pinned versions are skipped here AND re-checked at
  // apply time — a pin can appear between planning and applying.
  CompactionSpec collapse;
  collapse.kind = CompactionKind::kCollapseVersions;
  auto flush_batch = [&] {
    if (!collapse.victims.empty() && specs.size() < options_.max_specs) {
      specs.push_back(collapse);
    }
    collapse.victims.clear();
  };
  for (const VersionStats& vs : stats.versions) {
    if (vs.commit_id == stats.latest_commit || vs.pinned) continue;
    if (IsKeeper(vs.commit_id, stats.latest_commit)) continue;
    collapse.victims.push_back(vs.commit_id);
    if (collapse.victims.size() >= options_.max_victims_per_spec) {
      flush_batch();
    }
  }
  flush_batch();

  // Chunk squash: only cold keepers — hot versions still share most
  // chunks with their neighbours, and the working table would fragment
  // them again at the next seal.
  for (const VersionStats& vs : stats.versions) {
    if (specs.size() >= options_.max_specs) break;
    if (stats.latest_commit - vs.commit_id < options_.hot_window) continue;
    if (!IsKeeper(vs.commit_id, stats.latest_commit)) continue;
    for (const TableVersionStats& ts : vs.tables) {
      if (specs.size() >= options_.max_specs) break;
      const size_t ideal = IdealChunkCount(ts.distinct, options_.rows_per_chunk);
      if (static_cast<double>(ts.num_chunks) >=
          options_.squash_waste_factor * static_cast<double>(ideal)) {
        CompactionSpec squash;
        squash.kind = CompactionKind::kSquashChunks;
        squash.commit_id = vs.commit_id;
        squash.table = ts.table;
        specs.push_back(std::move(squash));
      }
    }
  }
  return specs;
}

const char* CompactionPolicyKindToString(CompactionPolicyKind kind) {
  switch (kind) {
    case CompactionPolicyKind::kTiered:
      return "tiered";
    case CompactionPolicyKind::kNoop:
      return "noop";
  }
  return "?";
}

bool ParseCompactionPolicyKind(const std::string& text,
                               CompactionPolicyKind* out) {
  if (text == "tiered") {
    *out = CompactionPolicyKind::kTiered;
    return true;
  }
  if (text == "noop") {
    *out = CompactionPolicyKind::kNoop;
    return true;
  }
  return false;
}

std::unique_ptr<CompactionPolicy> MakeCompactionPolicy(
    CompactionPolicyKind kind, const TieredCompactionOptions& options) {
  switch (kind) {
    case CompactionPolicyKind::kTiered:
      return std::make_unique<TieredCompactionPolicy>(options);
    case CompactionPolicyKind::kNoop:
      return std::make_unique<NoopCompactionPolicy>();
  }
  MVC_CHECK(false) << "unknown compaction policy kind";
  return nullptr;
}

}  // namespace mvc
