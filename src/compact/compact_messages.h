// Messages of the compaction protocol (warehouse <-> compactor).
//
// They live here rather than in net/protocol.h because they carry
// compaction/storage payloads (StoreStats, CompactionSpec,
// SnapshotHandle, TableVersion) and only the two endpoints ever touch
// them. Like ViewsSnapshotMsg, they are in-process messages: the
// SnapshotHandle / TableVersion payloads are shared-memory references,
// which is exactly the point — the squash rebuild reads sealed chunks
// without copying them.
//
// Protocol:
//   warehouse --CompactionStatsMsg--> compactor     (every N commits)
//   compactor --CompactionRequestMsg--> warehouse   (one spec;
//       a squash first asks for a pinned handle: has_replacement=false)
//   warehouse --CompactionResponseMsg--> compactor
//       kApplied    collapse/swap done, result attached
//       kFetched    squash phase 1: pinned handle attached; the
//                   compactor rebuilds off-actor and sends a second
//                   request with has_replacement=true
//       kDiscarded  the spec raced GC or a pin; dropped, note attached

#pragma once

#include <string>
#include <utility>

#include "common/string_util.h"
#include "compact/compaction_policy.h"
#include "net/message.h"
#include "storage/versioned_store.h"
#include "storage/versioned_table.h"

namespace mvc {

struct CompactionStatsMsg : Message {
  CompactionStatsMsg() : Message(Kind::kCompactionStats) {}

  StoreStats stats;

  std::string Summary() const override {
    return StrCat("CompactionStats{latest=", stats.latest_commit,
                  " retained=", stats.retained_versions, "}");
  }
};

struct CompactionRequestMsg : Message {
  CompactionRequestMsg() : Message(Kind::kCompactionRequest) {}

  int64_t request_id = 0;
  CompactionSpec spec;
  /// Squash phase 2: swap this rebuild in. Phase 1 (false) asks the
  /// warehouse for a pinned handle instead.
  bool has_replacement = false;
  TableVersion replacement;

  std::string Summary() const override {
    return StrCat("CompactionRequest{#", request_id, " ", spec.ToString(),
                  has_replacement ? " swap}" : "}");
  }
};

struct CompactionResponseMsg : Message {
  CompactionResponseMsg() : Message(Kind::kCompactionResponse) {}

  enum class Phase : uint8_t { kApplied = 0, kFetched = 1, kDiscarded = 2 };

  int64_t request_id = 0;
  Phase phase = Phase::kApplied;
  /// The spec this responds to, echoed back for the scheduler's books.
  CompactionSpec spec;
  /// kFetched: pins the version until the compactor releases it, so a
  /// concurrent collapse can never drop the version under the rebuild.
  SnapshotHandle handle;
  /// kApplied only.
  CompactionApplyResult result;
  /// kDiscarded: why (for logs and tests).
  std::string note;

  std::string Summary() const override {
    const char* p = phase == Phase::kApplied
                        ? "applied"
                        : (phase == Phase::kFetched ? "fetched" : "discarded");
    return StrCat("CompactionResponse{#", request_id, " ", spec.ToString(),
                  " ", p, "}");
  }
};

}  // namespace mvc
