// Chunk squash: rebuild a sealed TableVersion at its ideal chunk count.
//
// Sustained copy-on-write commits against a table that has shrunk (or
// grown and then churned) leave versions whose chunk chains are far
// longer than their row counts warrant — every chunk carries hash-map
// slack and per-chunk overhead. The squash rebuilds the version's rows
// into a right-sized power-of-two partition vector.
//
// The rebuild reads only immutable sealed chunks, so the CompactorProcess
// may run it outside the warehouse actor (ThreadRuntime background
// thread); the swap-in itself always happens on the warehouse actor via
// VersionedStore::SwapCompactedTable.

#pragma once

#include <cstddef>

#include "storage/versioned_table.h"

namespace mvc {

/// The target partition count for `distinct` rows: the smallest power of
/// two >= distinct / rows_per_chunk, floored at VersionedTable::kMinChunks.
size_t IdealChunkCount(size_t distinct, size_t rows_per_chunk);

/// Rebuilds `source` at IdealChunkCount partitions. Pure: the result
/// shares no chunks with the source and carries identical logical
/// contents (same distinct/total counts, same multiplicities).
TableVersion BuildSquashedTableVersion(const TableVersion& source,
                                       size_t rows_per_chunk);

}  // namespace mvc
