// Compaction policies: decide WHAT to merge; the CompactorProcess
// decides WHEN and the VersionedStore primitives do the apply.
//
// A policy is a pure function from StoreStats (the store's shape:
// retained versions, per-version chunk counts, pin bits) to a bounded
// list of CompactionSpecs. It never touches the store itself — the
// split mirrors Lucene's MergePolicy / MergeScheduler separation
// (SNIPPETS.md) and keeps policies unit-testable without a runtime.
//
// Two specs exist:
//   * kCollapseVersions — tiered retention. Old versions are thinned to
//     exponentially-spaced keepers: everything inside the hot window
//     stays, tier t (ages in [hot*base^t, hot*base^{t+1})) keeps only
//     commits divisible by base^{t+1}. Divisibility — not rank — makes
//     the keeper set of any commit shrink monotonically as the latest
//     commit advances, so a version discarded now would never have been
//     needed later.
//   * kSquashChunks — chunk-chain squash. A cold keeper whose table
//     carries far more chunks than its row count warrants is rebuilt at
//     the ideal chunk count (chunk_squash.h) and swapped in atomically.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/versioned_store.h"

namespace mvc {

enum class CompactionKind : uint8_t {
  kCollapseVersions = 0,
  kSquashChunks = 1,
};

const char* CompactionKindToString(CompactionKind kind);

/// One unit of compaction work, emitted by a policy and executed through
/// the warehouse actor (so every store mutation stays single-threaded).
struct CompactionSpec {
  CompactionKind kind = CompactionKind::kCollapseVersions;
  /// kCollapseVersions: retained commit ids to drop, ascending.
  std::vector<int64_t> victims;
  /// kSquashChunks: the version and table to rebuild.
  int64_t commit_id = -1;
  std::string table;

  std::string ToString() const;
  /// Stable identity for inflight dedup (the scheduler never runs two
  /// copies of the same work concurrently).
  std::string Key() const;
};

class CompactionPolicy {
 public:
  virtual ~CompactionPolicy() = default;
  virtual const char* name() const = 0;
  /// Plans against a stats snapshot. Must be deterministic in `stats`
  /// (the schedule explorer re-executes configurations).
  virtual std::vector<CompactionSpec> Plan(const StoreStats& stats) = 0;
};

/// Plans nothing. The experimental control for benchmarks and the
/// do-no-harm baseline for tests.
class NoopCompactionPolicy : public CompactionPolicy {
 public:
  const char* name() const override { return "noop"; }
  std::vector<CompactionSpec> Plan(const StoreStats& stats) override {
    (void)stats;
    return {};
  }
};

struct TieredCompactionOptions {
  /// Versions younger than this many commits are always kept.
  int64_t hot_window = 16;
  /// Tier fan-out (>= 2); see the keeper rule above.
  int64_t tier_base = 2;
  /// Squash a table once it holds >= this factor times its ideal chunk
  /// count.
  double squash_waste_factor = 2.0;
  /// Rows-per-chunk target for the ideal-count estimate; mirror the
  /// VersionedTable target_chunk_rows.
  size_t rows_per_chunk = 64;
  /// Bound on specs per Plan call — the scheduler's work queue stays
  /// short and a single stats message never fans out unboundedly.
  size_t max_specs = 8;
  /// Bound on victims per collapse spec (bounds per-message apply cost
  /// on the warehouse actor).
  size_t max_victims_per_spec = 64;
};

/// The default production policy: tiered retention plus chunk squash.
class TieredCompactionPolicy : public CompactionPolicy {
 public:
  explicit TieredCompactionPolicy(TieredCompactionOptions options = {});

  const char* name() const override { return "tiered"; }
  std::vector<CompactionSpec> Plan(const StoreStats& stats) override;

  /// The keeper predicate, exposed for the policy tests: must commit
  /// `commit` be retained when the latest commit is `latest`?
  bool IsKeeper(int64_t commit, int64_t latest) const;

  const TieredCompactionOptions& options() const { return options_; }

 private:
  TieredCompactionOptions options_;
};

/// Factory used by the system wiring (config.h names a kind, wiring
/// instantiates it here so SystemConfig stays copyable).
enum class CompactionPolicyKind : uint8_t {
  kTiered = 0,
  kNoop = 1,
};

const char* CompactionPolicyKindToString(CompactionPolicyKind kind);
bool ParseCompactionPolicyKind(const std::string& text,
                               CompactionPolicyKind* out);

std::unique_ptr<CompactionPolicy> MakeCompactionPolicy(
    CompactionPolicyKind kind, const TieredCompactionOptions& options);

}  // namespace mvc
