#include "compact/chunk_squash.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace mvc {

size_t IdealChunkCount(size_t distinct, size_t rows_per_chunk) {
  MVC_CHECK(rows_per_chunk >= 1);
  const size_t needed = (distinct + rows_per_chunk - 1) / rows_per_chunk;
  size_t count = VersionedTable::kMinChunks;
  while (count < needed) count *= 2;
  return count;
}

TableVersion BuildSquashedTableVersion(const TableVersion& source,
                                       size_t rows_per_chunk) {
  const size_t num_chunks = IdealChunkCount(source.distinct, rows_per_chunk);
  std::vector<Chunk> scratch(num_chunks);
  const size_t per_chunk = source.distinct / num_chunks + 1;
  for (Chunk& chunk : scratch) chunk.rows.reserve(per_chunk);
  if (source.chunks != nullptr) {
    for (const ChunkPtr& chunk : *source.chunks) {
      if (chunk == nullptr) continue;
      for (const auto& [tuple, count] : chunk->rows) {
        // Tuples are unique across a version's partitions, so this is a
        // plain insert, never a merge.
        Chunk& dst = scratch[TupleHash{}(tuple) & (num_chunks - 1)];
        dst.rows.emplace(tuple, count);
        dst.total_count += count;
        dst.approx_bytes += ApproxTupleBytes(tuple);
      }
    }
  }
  TableVersion squashed;
  squashed.name = source.name;
  squashed.schema = source.schema;
  auto chunks = std::make_shared<ChunkVec>();
  chunks->reserve(num_chunks);
  for (Chunk& chunk : scratch) {
    squashed.distinct += chunk.rows.size();
    squashed.total_count += chunk.total_count;
    squashed.approx_bytes += chunk.approx_bytes;
    // Squashed chunks are published immediately, so they need the same
    // columnar projection Seal() gives commit-path chunks — the scan
    // executor must keep working after a compaction swap.
    chunk.columnar = BuildColumnBlock(chunk, source.schema.num_columns());
    chunks->push_back(std::make_shared<const Chunk>(std::move(chunk)));
  }
  squashed.chunks = std::move(chunks);
  MVC_CHECK(squashed.distinct == source.distinct &&
            squashed.total_count == source.total_count)
      << "squash of '" << source.name << "' changed contents: distinct "
      << squashed.distinct << " vs " << source.distinct << ", total "
      << squashed.total_count << " vs " << source.total_count;
  return squashed;
}

}  // namespace mvc
