#include "compact/compactor_process.h"

#include <utility>

#include "common/logging.h"
#include "compact/chunk_squash.h"

namespace mvc {

CompactorProcess::CompactorProcess(std::string name,
                                   const CompactionConfig& config)
    : Process(std::move(name)),
      config_(config),
      policy_(MakeCompactionPolicy(config.policy, config.tiered)) {
  MVC_CHECK(config_.max_inflight >= 1) << "max_inflight must be >= 1";
}

void CompactorProcess::EnableObservability(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  merges_total_ = metrics->RegisterCounter("compact.merges_total");
  merges_discarded_ = metrics->RegisterCounter("compact.merges_discarded");
  versions_collapsed_ = metrics->RegisterCounter("compact.versions_collapsed");
  bytes_reclaimed_ = metrics->RegisterCounter("compact.bytes_reclaimed");
  inflight_gauge_ = metrics->RegisterGauge("compact.inflight");
}

void CompactorProcess::OnMessage(ProcessId from, MessagePtr msg) {
  (void)from;
  switch (msg->kind) {
    case Message::Kind::kCompactionStats:
      HandleStats(static_cast<CompactionStatsMsg*>(msg.get())->stats);
      return;
    case Message::Kind::kCompactionResponse:
      HandleResponse(static_cast<CompactionResponseMsg*>(msg.get()));
      return;
    default:
      MVC_LOG_ERROR() << "compactor: unexpected message " << msg->Summary();
  }
}

void CompactorProcess::HandleStats(const StoreStats& stats) {
  ++stats_.plans;
  for (CompactionSpec& spec : policy_->Plan(stats)) {
    if (!active_keys_.insert(spec.Key()).second) {
      // Already queued or racing the warehouse; the next stats snapshot
      // re-plans it if it is still worth doing.
      ++stats_.specs_deduped;
      continue;
    }
    ++stats_.specs_planned;
    pending_.push_back(std::move(spec));
  }
  Pump();
}

void CompactorProcess::HandleResponse(CompactionResponseMsg* resp) {
  auto it = inflight_.find(resp->request_id);
  MVC_CHECK(it != inflight_.end())
      << "compactor: response for unknown request #" << resp->request_id;
  inflight_.erase(it);
  switch (resp->phase) {
    case CompactionResponseMsg::Phase::kApplied: {
      ++stats_.merges_applied;
      stats_.versions_collapsed +=
          static_cast<int64_t>(resp->result.versions_collapsed);
      stats_.bytes_reclaimed +=
          static_cast<int64_t>(resp->result.bytes_reclaimed);
      if (merges_total_ != nullptr) merges_total_->Add(1);
      if (versions_collapsed_ != nullptr) {
        versions_collapsed_->Add(
            static_cast<int64_t>(resp->result.versions_collapsed));
      }
      if (bytes_reclaimed_ != nullptr) {
        bytes_reclaimed_->Add(
            static_cast<int64_t>(resp->result.bytes_reclaimed));
      }
      active_keys_.erase(resp->spec.Key());
      break;
    }
    case CompactionResponseMsg::Phase::kFetched: {
      // Squash phase 2: the O(table) rebuild runs here, on the
      // compactor — under ThreadRuntime that is a real background
      // thread reading immutable sealed chunks, so the warehouse actor
      // keeps committing meanwhile.
      const TableVersion* source =
          resp->handle.version().Find(resp->spec.table);
      MVC_CHECK(source != nullptr)
          << "fetched version lost table " << resp->spec.table;
      auto swap = std::make_unique<CompactionRequestMsg>();
      swap->request_id = ++next_request_;
      swap->spec = resp->spec;
      swap->has_replacement = true;
      swap->replacement =
          BuildSquashedTableVersion(*source, config_.tiered.rows_per_chunk);
      resp->handle.Release();
      // The key stays active until the swap resolves.
      inflight_.emplace(swap->request_id, swap->spec);
      Send(warehouse_, std::move(swap));
      break;
    }
    case CompactionResponseMsg::Phase::kDiscarded: {
      ++stats_.merges_discarded;
      if (merges_discarded_ != nullptr) merges_discarded_->Add(1);
      active_keys_.erase(resp->spec.Key());
      break;
    }
  }
  Pump();
}

void CompactorProcess::Pump() {
  while (inflight_.size() < config_.max_inflight && !pending_.empty()) {
    CompactionSpec spec = std::move(pending_.front());
    pending_.pop_front();
    auto req = std::make_unique<CompactionRequestMsg>();
    req->request_id = ++next_request_;
    req->spec = spec;
    inflight_.emplace(req->request_id, std::move(spec));
    Send(warehouse_, std::move(req));
  }
  if (inflight_.size() > stats_.peak_inflight) {
    stats_.peak_inflight = inflight_.size();
  }
  SetInflightGauge();
}

void CompactorProcess::SetInflightGauge() {
  if (inflight_gauge_ != nullptr) {
    inflight_gauge_->Set(static_cast<int64_t>(inflight_.size()));
  }
}

}  // namespace mvc
