// CompactorProcess: the background merge scheduler.
//
// An actor (driven through Process::Deliver like everything else, so it
// runs on SimRuntime, ThreadRuntime and the ExploringRuntime alike)
// that turns the warehouse's periodic CompactionStatsMsg into bounded
// background work:
//
//   stats -> policy.Plan() -> pending queue -> at most `max_inflight`
//   CompactionRequestMsgs racing the commit stream.
//
// The warehouse actor applies each request in O(spec) between commits —
// compaction never blocks WarehouseProcess::Commit, it just interleaves
// with it. Chunk squashes split into fetch/rebuild/swap so the O(table)
// rebuild runs HERE (a separate thread under ThreadRuntime), not on the
// warehouse actor; the fetched SnapshotHandle pins the version against
// concurrent collapse for the duration.
//
// The ConcurrentMergeScheduler analogy (SNIPPETS.md) maps threads to
// messages: "maxMergeCount" is max_inflight, backpressure is the
// pending queue, and determinism comes for free from the runtime.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "compact/compact_messages.h"
#include "compact/compaction_policy.h"
#include "net/runtime.h"
#include "obs/metrics.h"

namespace mvc {

/// The `compaction` block of SystemConfig (copyable: the policy is
/// named by kind and instantiated at wiring time).
struct CompactionConfig {
  /// Master switch; everything below is inert when false.
  bool enabled = false;
  CompactionPolicyKind policy = CompactionPolicyKind::kTiered;
  TieredCompactionOptions tiered;
  /// Bound on concurrently outstanding compaction requests.
  size_t max_inflight = 2;
  /// The warehouse sends a stats snapshot every this many commits.
  int64_t stats_every_commits = 8;
  /// Per-version detail cap in those snapshots (bounds message size
  /// when the retained window is huge).
  size_t max_version_detail = 256;
};

class CompactorProcess : public Process {
 public:
  CompactorProcess(std::string name, const CompactionConfig& config);

  /// Must be set before the runtime starts.
  void SetWarehouse(ProcessId warehouse) { warehouse_ = warehouse; }

  /// Registers compact.* instruments. Wiring time only, like every
  /// registry registration.
  void EnableObservability(obs::MetricsRegistry* metrics);

  const CompactionPolicy& policy() const { return *policy_; }

  /// Scheduler book-keeping, for tests and benches.
  struct Stats {
    int64_t plans = 0;
    int64_t specs_planned = 0;
    int64_t specs_deduped = 0;
    int64_t merges_applied = 0;
    int64_t merges_discarded = 0;
    int64_t versions_collapsed = 0;
    int64_t bytes_reclaimed = 0;
    /// High-water mark of outstanding requests; tests assert it never
    /// exceeds max_inflight.
    size_t peak_inflight = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t inflight() const { return inflight_.size(); }
  size_t pending() const { return pending_.size(); }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  void HandleStats(const StoreStats& stats);
  void HandleResponse(CompactionResponseMsg* resp);
  /// Moves pending specs into flight up to the inflight bound.
  void Pump();
  void SetInflightGauge();

  CompactionConfig config_;
  std::unique_ptr<CompactionPolicy> policy_;
  ProcessId warehouse_ = kInvalidProcess;

  std::deque<CompactionSpec> pending_;
  /// request_id -> spec awaiting its response.
  std::map<int64_t, CompactionSpec> inflight_;
  /// Keys of every pending or inflight spec: the same logical work is
  /// never queued twice (stats arrive faster than merges finish).
  std::set<std::string> active_keys_;
  int64_t next_request_ = 0;

  Stats stats_;
  obs::Counter* merges_total_ = nullptr;
  obs::Counter* merges_discarded_ = nullptr;
  obs::Counter* versions_collapsed_ = nullptr;
  obs::Counter* bytes_reclaimed_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
};

}  // namespace mvc
