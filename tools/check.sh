#!/usr/bin/env bash
# Builds and tests the presets that gate a change:
#
#   release  optimized, what the benchmarks report (warnings as errors;
#            GCC 12's -Wrestrict false positive is suppressed per-file
#            where it fires, see tests/ and bench/ CMakeLists)
#   asan     address+undefined sanitizers, full suite
#   tsan     thread sanitizer over the runtime/stress subset (real
#            threads only; the simulated runtimes are single-threaded)
#
# Usage:
#
#   tools/check.sh              # release + asan
#   tools/check.sh tsan         # just one preset
#   tools/check.sh release tsan # any subset

set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan)
fi

jobs=$(nproc 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "=== all presets green: ${presets[*]}"
