#!/usr/bin/env bash
# Builds and tests the two presets that gate a change: `release`
# (optimized, what the benchmarks report) and `asan`
# (address+undefined sanitizers). Usage:
#
#   tools/check.sh            # both presets
#   tools/check.sh release    # just one
#
# Note: `release` turns MVC_WERROR off — GCC 12's -Wrestrict fires a
# known false positive on std::string at -O2.

set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan)
fi

jobs=$(nproc 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "=== all presets green: ${presets[*]}"
