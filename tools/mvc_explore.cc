// mvc_explore — systematic schedule exploration for the warehouse
// system (see docs/ANALYSIS.md).
//
// Enumerates message-delivery interleavings of a scenario up to a delay
// bound, running the consistency oracle after every delivery, and emits
// a replayable counterexample schedule when a violation is found.
//
//   mvc_explore --example table1-race --delay-bound 3
//   mvc_explore --scenario examples/dashboard.mvc --delay-bound 1 --json
//   mvc_explore --self-test          # explorer finds injected paint bugs
//   mvc_explore --example table1-race --mutation spa-skip-order-gate
//       --cx-out /tmp/bug.sched --trace
//   mvc_explore ... --replay /tmp/bug.sched

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "explore/schedule_explorer.h"
#include "merge/merge_engine.h"
#include "parser/scenario_parser.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

struct Flags {
  std::string scenario_file;
  std::string example;
  std::string managers;  // optional override, mvc_sim spelling
  int delay_bound = 2;
  int64_t max_executions = 200000;
  int64_t max_steps = 10000;
  bool no_sleep_sets = false;
  bool no_deepening = false;
  std::string check = "auto";
  std::string mutation = "none";
  std::string cx_out;
  std::string replay_file;
  bool json = false;
  bool trace = false;
  bool self_test = false;
};

void Usage() {
  std::cout <<
      "mvc_explore: enumerate delivery schedules, check MVC on each\n\n"
      "Scenario (pick one):\n"
      "  --scenario FILE         a .mvc scenario file (see examples/)\n"
      "  --example NAME          table1|table1-race|example3|example5\n"
      "  --self-test             verify the explorer catches deliberately\n"
      "                          broken SPA/PA paint rules (ignores the\n"
      "                          scenario flags)\n\n"
      "Search bounds:\n"
      "  --delay-bound N         max scheduling deviations per execution\n"
      "                          (default 2)\n"
      "  --max-executions N      stop after N executions (default 200000)\n"
      "  --max-steps N           per-execution delivery cap (default\n"
      "                          10000)\n"
      "  --no-sleep-sets         disable partial-order pruning\n"
      "  --no-deepening          single search at --delay-bound instead\n"
      "                          of iterative deepening 0..bound\n\n"
      "Oracle / output:\n"
      "  --check LEVEL           auto|complete|strong|convergent|none\n"
      "  --managers KIND         override every view's manager kind\n"
      "                          (complete|strong|periodic|convergent)\n"
      "  --mutation M            inject a paint-rule bug: none|\n"
      "                          spa-skip-white-gate|spa-skip-order-gate|\n"
      "                          pa-skip-white-gate\n"
      "  --cx-out FILE           write the counterexample schedule here\n"
      "  --replay FILE           replay a counterexample file instead of\n"
      "                          exploring; prints its trace and verdict\n"
      "  --trace                 print the counterexample's paper-style\n"
      "                          trace on violation\n"
      "  --json                  machine-readable summary on stdout\n\n"
      "Exit status: 0 no violation, 1 violation found, 2 usage/build\n"
      "error. (--replay exits 0 when the replayed schedule violates as\n"
      "recorded.)\n";
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else if (arg == "--scenario") {
      flags->scenario_file = next();
    } else if (arg == "--example") {
      flags->example = next();
    } else if (arg == "--managers") {
      flags->managers = next();
    } else if (arg == "--delay-bound") {
      flags->delay_bound = std::atoi(next());
    } else if (arg == "--max-executions") {
      flags->max_executions = std::atoll(next());
    } else if (arg == "--max-steps") {
      flags->max_steps = std::atoll(next());
    } else if (arg == "--no-sleep-sets") {
      flags->no_sleep_sets = true;
    } else if (arg == "--no-deepening") {
      flags->no_deepening = true;
    } else if (arg == "--check") {
      flags->check = next();
    } else if (arg == "--mutation") {
      flags->mutation = next();
    } else if (arg == "--cx-out") {
      flags->cx_out = next();
    } else if (arg == "--replay") {
      flags->replay_file = next();
    } else if (arg == "--json") {
      flags->json = true;
    } else if (arg == "--trace") {
      flags->trace = true;
    } else if (arg == "--self-test") {
      flags->self_test = true;
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      return false;
    }
  }
  return true;
}

Result<SystemConfig> BuildConfig(const Flags& flags) {
  SystemConfig config;
  if (!flags.scenario_file.empty()) {
    MVC_ASSIGN_OR_RETURN(config, ParseScenarioFile(flags.scenario_file));
  } else if (flags.example == "table1") {
    config = Table1Scenario();
  } else if (flags.example == "table1-race") {
    config = Table1RaceScenario();
  } else if (flags.example == "example3") {
    config = Example3Scenario();
  } else if (flags.example == "example5") {
    config = Example5Scenario();
  } else if (flags.example.empty()) {
    return Status::InvalidArgument(
        "pick a scenario: --scenario FILE, --example NAME, or --self-test");
  } else {
    return Status::InvalidArgument("bad --example " + flags.example);
  }
  if (!flags.managers.empty()) {
    ManagerKind kind;
    if (flags.managers == "complete") {
      kind = ManagerKind::kComplete;
    } else if (flags.managers == "strong") {
      kind = ManagerKind::kStrong;
    } else if (flags.managers == "periodic") {
      kind = ManagerKind::kPeriodic;
    } else if (flags.managers == "convergent") {
      kind = ManagerKind::kConvergent;
    } else {
      return Status::InvalidArgument("bad --managers " + flags.managers);
    }
    for (const ViewDefinition& def : config.views) {
      config.manager_kinds[def.name] = kind;
    }
  }
  PaintMutation mutation;
  if (!ParsePaintMutation(flags.mutation, &mutation)) {
    return Status::InvalidArgument("bad --mutation " + flags.mutation);
  }
  config.merge.mutation = mutation;
  return config;
}

Result<CheckLevel> ResolveCheck(const Flags& flags,
                                const SystemConfig& config) {
  if (flags.check == "auto") return DeriveCheckLevel(config);
  CheckLevel level;
  if (!ParseCheckLevel(flags.check, &level)) {
    return Status::InvalidArgument("bad --check " + flags.check);
  }
  return level;
}

ExploreOptions MakeOptions(const Flags& flags, CheckLevel check) {
  ExploreOptions options;
  options.delay_bound = flags.delay_bound;
  options.iterative_deepening = !flags.no_deepening;
  options.max_executions = flags.max_executions;
  options.max_steps = flags.max_steps;
  options.sleep_sets = !flags.no_sleep_sets;
  options.check = check;
  return options;
}

std::string ScenarioLabel(const Flags& flags) {
  if (!flags.scenario_file.empty()) return flags.scenario_file;
  return StrCat("example:", flags.example);
}

void PrintViolation(const ExploreViolation& violation) {
  std::cout << "VIOLATION after " << violation.schedule.size()
            << " deliveries (execution #" << violation.execution
            << ", delay bound " << violation.delay_bound << "):\n  "
            << violation.message << "\nSchedule:\n";
  for (const ScheduleStep& step : violation.schedule) {
    std::cout << "  deliver " << step.from << " -> " << step.to << " "
              << step.kind << "\n";
  }
}

int RunReplay(const Flags& flags) {
  auto config = BuildConfig(flags);
  if (!config.ok()) {
    std::cerr << config.status() << "\n";
    return 2;
  }
  auto check = ResolveCheck(flags, *config);
  if (!check.ok()) {
    std::cerr << check.status() << "\n";
    return 2;
  }
  auto schedule = ReadCounterexampleFile(flags.replay_file);
  if (!schedule.ok()) {
    std::cerr << schedule.status() << "\n";
    return 2;
  }
  auto replay = ScheduleExplorer::Replay(*config, *schedule, *check);
  if (!replay.ok()) {
    std::cerr << "replay failed: " << replay.status() << "\n";
    return 2;
  }
  for (const std::string& line : replay->trace) {
    std::cout << line << "\n";
  }
  std::cout << "\nReplay verdict (" << CheckLevelToString(*check)
            << "): " << replay->verdict << "\n";
  // A replayed counterexample is expected to violate; succeed when it
  // reproduces.
  return replay->verdict.ok() ? 1 : 0;
}

int RunExplore(const Flags& flags) {
  auto config = BuildConfig(flags);
  if (!config.ok()) {
    std::cerr << config.status() << "\n";
    return 2;
  }
  auto check = ResolveCheck(flags, *config);
  if (!check.ok()) {
    std::cerr << check.status() << "\n";
    return 2;
  }
  ExploreOptions options = MakeOptions(flags, *check);
  ScheduleExplorer explorer(*config, options);
  auto report = explorer.Explore();
  if (!report.ok()) {
    std::cerr << "explore failed: " << report.status() << "\n";
    return 2;
  }

  if (flags.json) {
    std::cout << "{\"scenario\":\"" << ScenarioLabel(flags)
              << "\",\"check\":\"" << CheckLevelToString(*check)
              << "\",\"report\":" << report->ToJson() << "}\n";
  } else {
    std::cout << "Scenario: " << ScenarioLabel(flags)
              << " (check " << CheckLevelToString(*check) << ", mutation "
              << flags.mutation << ")\n"
              << "Explored " << report->executions << " executions, "
              << report->deliveries << " deliveries (max depth "
              << report->max_depth << ", " << report->truncated
              << " truncated, " << report->sleep_skips << " sleep skips, "
              << report->bound_prunes << " bound prunes"
              << (report->exhausted ? ", exhausted" : "") << ")\n";
  }
  if (!report->violation.has_value()) {
    if (!flags.json) std::cout << "No violation found within the bound.\n";
    return 0;
  }

  const ExploreViolation& violation = *report->violation;
  if (!flags.json) PrintViolation(violation);
  if (!flags.cx_out.empty()) {
    Status written = WriteCounterexampleFile(flags.cx_out,
                                             ScenarioLabel(flags), *check,
                                             violation);
    if (!written.ok()) {
      std::cerr << written << "\n";
      return 2;
    }
    if (!flags.json) {
      std::cout << "Counterexample written to " << flags.cx_out << "\n";
    }
  }
  if (flags.trace && !flags.json) {
    auto replay =
        ScheduleExplorer::Replay(*config, violation.schedule, *check);
    if (replay.ok()) {
      std::cout << "Trace:\n";
      for (const std::string& line : replay->trace) {
        std::cout << "  " << line << "\n";
      }
    } else {
      std::cerr << "trace replay failed: " << replay.status() << "\n";
    }
  }
  return 1;
}

// --- Self-test: inject paint-rule bugs, demand the explorer finds them.

struct SelfTestCase {
  const char* name;
  PaintMutation mutation;
  /// Manager kind for every view ("" = scenario default, complete).
  const char* managers;
  CheckLevel check;
};

int RunSelfTest(const Flags& flags) {
  // Both cases run the Table 1 race scenario: two dependent updates from
  // different sources, racing AL streams into one merge process.
  const SelfTestCase kCases[] = {
      // SPA ordering gate: correct on the canonical schedule, violating
      // only under an adversarial interleaving — the explorer must find
      // it.
      {"spa-skip-order-gate", PaintMutation::kSpaSkipOrderGate, "",
       CheckLevel::kComplete},
      // PA "all colorable" (white) gate with strongly consistent
      // managers.
      {"pa-skip-white-gate", PaintMutation::kPaSkipWhiteGate, "strong",
       CheckLevel::kStrong},
  };
  constexpr size_t kMaxCounterexample = 20;

  bool all_ok = true;
  for (const SelfTestCase& test : kCases) {
    SystemConfig config = Table1RaceScenario();
    if (std::string(test.managers) == "strong") {
      for (const ViewDefinition& def : config.views) {
        config.manager_kinds[def.name] = ManagerKind::kStrong;
      }
    }

    ExploreOptions options;
    options.delay_bound = flags.delay_bound > 2 ? flags.delay_bound : 6;
    options.max_steps = 500;
    options.check = test.check;

    // 1. Unmutated control: every schedule within the bound must pass.
    {
      ScheduleExplorer control(config, options);
      auto report = control.Explore();
      if (!report.ok()) {
        std::cerr << "[" << test.name << "] control explore failed: "
                  << report.status() << "\n";
        all_ok = false;
        continue;
      }
      if (report->violation.has_value()) {
        std::cerr << "[" << test.name << "] FAIL: unmutated engine"
                  << " reported a violation:\n  "
                  << report->violation->message << "\n";
        all_ok = false;
        continue;
      }
      std::cout << "[" << test.name << "] control: "
                << report->executions << " executions clean"
                << (report->exhausted ? " (exhausted)" : "") << "\n";
    }

    // 2. Mutated engine: the explorer must find a short counterexample.
    config.merge.mutation = test.mutation;
    ScheduleExplorer explorer(config, options);
    auto report = explorer.Explore();
    if (!report.ok()) {
      std::cerr << "[" << test.name << "] explore failed: "
                << report.status() << "\n";
      all_ok = false;
      continue;
    }
    if (!report->violation.has_value()) {
      std::cerr << "[" << test.name << "] FAIL: injected mutation not"
                << " detected in " << report->executions << " executions\n";
      all_ok = false;
      continue;
    }
    const ExploreViolation& violation = *report->violation;
    if (violation.schedule.size() > kMaxCounterexample) {
      std::cerr << "[" << test.name << "] FAIL: counterexample has "
                << violation.schedule.size() << " deliveries (want <= "
                << kMaxCounterexample << ")\n";
      all_ok = false;
      continue;
    }

    // 3. The counterexample must survive a file round-trip and replay to
    // the same verdict.
    const std::string cx_path =
        flags.cx_out.empty() ? StrCat("mvc_explore_", test.name, ".sched")
                             : StrCat(flags.cx_out, ".", test.name);
    Status written = WriteCounterexampleFile(cx_path, "self-test",
                                             test.check, violation);
    if (!written.ok()) {
      std::cerr << "[" << test.name << "] FAIL: " << written << "\n";
      all_ok = false;
      continue;
    }
    auto schedule = ReadCounterexampleFile(cx_path);
    if (!schedule.ok()) {
      std::cerr << "[" << test.name << "] FAIL: " << schedule.status()
                << "\n";
      all_ok = false;
      continue;
    }
    auto replay = ScheduleExplorer::Replay(config, *schedule, test.check);
    if (!replay.ok()) {
      std::cerr << "[" << test.name << "] FAIL: replay error: "
                << replay.status() << "\n";
      all_ok = false;
      continue;
    }
    if (replay->verdict.ok()) {
      std::cerr << "[" << test.name << "] FAIL: replayed counterexample"
                << " did not reproduce the violation\n";
      all_ok = false;
      continue;
    }

    std::cout << "[" << test.name << "] detected after "
              << violation.execution + 1 << " executions at delay bound "
              << violation.delay_bound << "; counterexample "
              << violation.schedule.size() << " deliveries"
              << (flags.cx_out.empty() ? "" : StrCat(" -> ", cx_path))
              << " (replay reproduces)\n";
    if (flags.trace) {
      for (const std::string& line : replay->trace) {
        std::cout << "    " << line << "\n";
      }
    }
    // The round-trip file is scratch unless the caller asked to keep it.
    if (flags.cx_out.empty()) std::remove(cx_path.c_str());
  }
  std::cout << (all_ok ? "self-test PASS\n" : "self-test FAIL\n");
  return all_ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;
  if (flags.self_test) return RunSelfTest(flags);
  if (!flags.replay_file.empty()) return RunReplay(flags);
  return RunExplore(flags);
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) { return mvc::Main(argc, argv); }
