// mvc_stats — pretty-printer and validator for mvc-metrics-v1 files
// (the JSON written by `mvc_sim --metrics-out`).
//
//   mvc_stats METRICS.json              # human-readable summary
//   mvc_stats --check METRICS.json      # validate; exit 1 on any problem
//   mvc_stats --counters METRICS.json   # counters/gauges only (grep-able)
//   mvc_stats --check-bench BENCH.json  # validate a bench-result file
//
// --check verifies the schema tag, the structural shape of every
// instrument, each histogram's internal consistency (bucket counts sum
// to `count`, bounds ascend, min <= max), and that the headline derived
// histograms (update.commit_latency_us, view.staleness_us,
// merge.al_hold_time_us) are present — a metrics file without them came
// from a run that never finalized its observability.
//
// --check-bench validates the BENCH_*.json shape the bench_* binaries
// emit with --json: either the legacy bare array of records, or the
// schema-tagged object form {"schema": "<known name>", "records": [...]}
// (known: mvc-bench-read-v1, mvc-bench-compact-v1, mvc-bench-vut-v1,
// mvc-bench-serve-v1, mvc-bench-ingest-v1). Every record needs a unique
// non-empty "name", a positive "iterations", a non-negative "ns_per_op",
// and (optionally) a non-negative "allocations" — required, not
// optional, under mvc-bench-vut-v1, whose whole point is the allocation
// counts. The serve schema additionally carries a "summary" object
// whose invariants encode the read-tier acceptance bar: positive p99s
// and speedup, and under saturation answered == issued with shed > 0
// and timeouts == 0 (admission control sheds with explicit responses;
// nothing dangles). The ingest schema's summary encodes the scale-out
// bar: committed == issued > 0 (no transaction lost crossing shard
// boundaries), the per-shard sequenced counts sum to the total, and
// both commit-latency p99s are positive. CI smoke jobs run this against
// freshly produced bench artifacts before uploading them.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace mvc {
namespace {

int g_errors = 0;

void Fail(const std::string& message) {
  std::cerr << "mvc_stats: " << message << "\n";
  ++g_errors;
}

const obs::JsonValue* RequireArray(const obs::JsonValue& root,
                                   const std::string& key) {
  const obs::JsonValue* v = root.Find(key);
  if (v == nullptr || !v->is_array()) {
    Fail("missing or non-array \"" + key + "\"");
    return nullptr;
  }
  return v;
}

/// Validates one {"name": ..., "value": ...} entry.
void CheckCounterEntry(const obs::JsonValue& entry, const std::string& what) {
  if (!entry.is_object()) {
    Fail(what + " entry is not an object");
    return;
  }
  const obs::JsonValue* name = entry.Find("name");
  const obs::JsonValue* value = entry.Find("value");
  if (name == nullptr || !name->is_string() || name->str.empty()) {
    Fail(what + " entry without a name");
    return;
  }
  if (value == nullptr || !value->is_number()) {
    Fail(what + " '" + name->str + "' without a numeric value");
  }
}

void CheckHistogramEntry(const obs::JsonValue& entry) {
  if (!entry.is_object()) {
    Fail("histogram entry is not an object");
    return;
  }
  const obs::JsonValue* name = entry.Find("name");
  if (name == nullptr || !name->is_string() || name->str.empty()) {
    Fail("histogram entry without a name");
    return;
  }
  const obs::JsonValue* count = entry.Find("count");
  const obs::JsonValue* buckets = entry.Find("buckets");
  if (count == nullptr || !count->is_number() || count->AsInt() < 0) {
    Fail("histogram '" + name->str + "' without a non-negative count");
    return;
  }
  if (buckets == nullptr || !buckets->is_array()) {
    Fail("histogram '" + name->str + "' without a buckets array");
    return;
  }
  int64_t bucket_total = 0;
  int64_t last_le = INT64_MIN;
  for (const obs::JsonValue& b : buckets->array) {
    const obs::JsonValue* le = b.Find("le");
    const obs::JsonValue* c = b.Find("count");
    if (le == nullptr || c == nullptr || !le->is_number() ||
        !c->is_number()) {
      Fail("histogram '" + name->str + "' has a malformed bucket");
      return;
    }
    if (le->AsInt() <= last_le) {
      Fail("histogram '" + name->str + "' buckets not ascending by le");
    }
    if (c->AsInt() <= 0) {
      Fail("histogram '" + name->str +
           "' contains an empty bucket (exporter emits non-empty only)");
    }
    last_le = le->AsInt();
    bucket_total += c->AsInt();
  }
  if (bucket_total != count->AsInt()) {
    Fail("histogram '" + name->str + "' bucket counts sum to " +
         std::to_string(bucket_total) + ", expected count=" +
         std::to_string(count->AsInt()));
  }
  const obs::JsonValue* min = entry.Find("min");
  const obs::JsonValue* max = entry.Find("max");
  if (count->AsInt() > 0 &&
      (min == nullptr || max == nullptr || min->AsInt() > max->AsInt())) {
    Fail("histogram '" + name->str + "' has min > max");
  }
}

bool HasHistogram(const obs::JsonValue& histograms, const std::string& name) {
  for (const obs::JsonValue& h : histograms.array) {
    const obs::JsonValue* n = h.Find("name");
    if (n != nullptr && n->is_string() && n->str == name) return true;
  }
  return false;
}

void Check(const obs::JsonValue& root) {
  const obs::JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str != "mvc-metrics-v1") {
    Fail("schema tag is not \"mvc-metrics-v1\"");
    return;
  }
  const obs::JsonValue* counters = RequireArray(root, "counters");
  const obs::JsonValue* gauges = RequireArray(root, "gauges");
  const obs::JsonValue* histograms = RequireArray(root, "histograms");
  if (counters != nullptr) {
    for (const obs::JsonValue& c : counters->array) {
      CheckCounterEntry(c, "counter");
    }
  }
  if (gauges != nullptr) {
    for (const obs::JsonValue& g : gauges->array) {
      CheckCounterEntry(g, "gauge");
    }
  }
  if (histograms != nullptr) {
    for (const obs::JsonValue& h : histograms->array) {
      CheckHistogramEntry(h);
    }
    for (const char* headline :
         {"update.commit_latency_us", "view.staleness_us",
          "merge.al_hold_time_us"}) {
      if (!HasHistogram(*histograms, headline)) {
        Fail(std::string("headline histogram '") + headline +
             "' is missing (run not finalized?)");
      }
    }
  }
}

/// Bench artifact schemas --check-bench accepts in the tagged form.
const char* const kKnownBenchSchemas[] = {
    "mvc-bench-read-v1", "mvc-bench-compact-v1", "mvc-bench-vut-v1",
    "mvc-bench-serve-v1", "mvc-bench-ingest-v1", "mvc-bench-maint-v1"};

/// Resolves the records array of a bench artifact: the legacy form is a
/// bare array; the tagged form wraps it as {"schema", "records"} and the
/// schema name must be known. Returns nullptr (and Fails) when neither.
const obs::JsonValue* BenchRecords(const obs::JsonValue& root,
                                   std::string* schema_out) {
  if (root.is_array()) return &root;
  if (!root.is_object()) {
    Fail("bench file is neither a JSON array nor a schema-tagged object");
    return nullptr;
  }
  const obs::JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string()) {
    Fail("bench object without a string \"schema\" tag");
    return nullptr;
  }
  bool known = false;
  for (const char* name : kKnownBenchSchemas) {
    if (schema->str == name) known = true;
  }
  if (!known) {
    Fail("unknown bench schema \"" + schema->str + "\"");
    return nullptr;
  }
  *schema_out = schema->str;
  return RequireArray(root, "records");
}

/// mvc-bench-serve-v1 invariants: the "summary" object must show a
/// positive p99 on both read paths with a positive speedup, and the
/// saturation section must have shed at least one query, answered every
/// one it was issued, and timed none out — a serve artifact where the
/// warehouse dropped queries on the floor must not pass CI.
void CheckServeSummary(const obs::JsonValue& root) {
  const obs::JsonValue* summary = root.Find("summary");
  if (summary == nullptr || !summary->is_object()) {
    Fail("mvc-bench-serve-v1 file without a \"summary\" object");
    return;
  }
  auto number = [&](const char* key) -> const obs::JsonValue* {
    const obs::JsonValue* v = summary->Find(key);
    if (v == nullptr || !v->is_number()) {
      Fail(std::string("serve summary without a numeric \"") + key + "\"");
      return nullptr;
    }
    return v;
  };
  const obs::JsonValue* in_place = number("in_place_p99_ns");
  const obs::JsonValue* flatten = number("flatten_p99_ns");
  const obs::JsonValue* speedup = number("p99_speedup");
  const obs::JsonValue* issued = number("issued");
  const obs::JsonValue* answered = number("answered");
  const obs::JsonValue* shed = number("shed");
  const obs::JsonValue* timeouts = number("timeouts");
  if (in_place != nullptr && in_place->number <= 0) {
    Fail("serve summary in_place_p99_ns is not positive");
  }
  if (flatten != nullptr && flatten->number <= 0) {
    Fail("serve summary flatten_p99_ns is not positive");
  }
  if (speedup != nullptr && speedup->number <= 0) {
    Fail("serve summary p99_speedup is not positive");
  }
  if (issued != nullptr && issued->AsInt() <= 0) {
    Fail("serve summary issued no queries");
  }
  if (issued != nullptr && answered != nullptr &&
      answered->AsInt() != issued->AsInt()) {
    Fail("serve summary answered " + std::to_string(answered->AsInt()) +
         " of " + std::to_string(issued->AsInt()) +
         " queries (responses were lost)");
  }
  if (shed != nullptr && shed->AsInt() <= 0) {
    Fail("serve summary saturation section shed no queries");
  }
  if (timeouts != nullptr && timeouts->AsInt() != 0) {
    Fail("serve summary reports " + std::to_string(timeouts->AsInt()) +
         " timed-out queries (shedding must answer, not drop)");
  }
}

/// mvc-bench-ingest-v1 invariants: every issued transaction must have
/// committed (nothing lost crossing shard boundaries or inside a group
/// commit batch), the per-shard sequenced counts must account for the
/// whole stream, and both commit-latency p99s must be positive — an
/// ingest artifact where shards dropped or double-counted transactions
/// must not pass CI.
void CheckIngestSummary(const obs::JsonValue& root) {
  const obs::JsonValue* summary = root.Find("summary");
  if (summary == nullptr || !summary->is_object()) {
    Fail("mvc-bench-ingest-v1 file without a \"summary\" object");
    return;
  }
  auto number = [&](const char* key) -> const obs::JsonValue* {
    const obs::JsonValue* v = summary->Find(key);
    if (v == nullptr || !v->is_number()) {
      Fail(std::string("ingest summary without a numeric \"") + key + "\"");
      return nullptr;
    }
    return v;
  };
  const obs::JsonValue* issued = number("issued");
  const obs::JsonValue* committed = number("committed");
  const obs::JsonValue* num_shards = number("num_shards");
  const obs::JsonValue* speedup = number("throughput_speedup");
  const obs::JsonValue* baseline_p99 = number("baseline_commit_p99_us");
  const obs::JsonValue* scaled_p99 = number("scaled_commit_p99_us");
  if (issued != nullptr && issued->AsInt() <= 0) {
    Fail("ingest summary issued no transactions");
  }
  if (issued != nullptr && committed != nullptr &&
      committed->AsInt() != issued->AsInt()) {
    Fail("ingest summary committed " + std::to_string(committed->AsInt()) +
         " of " + std::to_string(issued->AsInt()) +
         " issued transactions (updates were lost)");
  }
  if (speedup != nullptr && speedup->number <= 0) {
    Fail("ingest summary throughput_speedup is not positive");
  }
  if (baseline_p99 != nullptr && baseline_p99->AsInt() <= 0) {
    Fail("ingest summary baseline_commit_p99_us is not positive");
  }
  if (scaled_p99 != nullptr && scaled_p99->AsInt() <= 0) {
    Fail("ingest summary scaled_commit_p99_us is not positive");
  }
  const obs::JsonValue* per_shard = summary->Find("per_shard_sequenced");
  if (per_shard == nullptr || !per_shard->is_array()) {
    Fail("ingest summary without a \"per_shard_sequenced\" array");
    return;
  }
  if (num_shards != nullptr && per_shard->array.size() !=
                                   static_cast<size_t>(num_shards->AsInt())) {
    Fail("ingest summary per_shard_sequenced has " +
         std::to_string(per_shard->array.size()) + " entries for " +
         std::to_string(num_shards->AsInt()) + " shards");
  }
  int64_t sequenced = 0;
  for (const obs::JsonValue& entry : per_shard->array) {
    if (!entry.is_number() || entry.AsInt() < 0) {
      Fail("ingest summary per_shard_sequenced entry is not a count");
      return;
    }
    sequenced += entry.AsInt();
  }
  if (issued != nullptr && sequenced != issued->AsInt()) {
    Fail("ingest summary per-shard counts sum to " +
         std::to_string(sequenced) + " but " +
         std::to_string(issued->AsInt()) +
         " transactions were issued (shards dropped or double-counted)");
  }
}

/// mvc-bench-maint-v1 invariants: the shared delta plan must actually
/// share (fewer chain-step evaluations than the per-view path), the
/// self-maintaining path must never have gone to the sources (zero
/// query rounds, every action list a round avoided), and both commit
/// p99s must be positive — a maint artifact where sharing regressed or
/// a source round slipped through must not pass CI.
void CheckMaintSummary(const obs::JsonValue& root) {
  const obs::JsonValue* summary = root.Find("summary");
  if (summary == nullptr || !summary->is_object()) {
    Fail("mvc-bench-maint-v1 file without a \"summary\" object");
    return;
  }
  auto number = [&](const char* key) -> const obs::JsonValue* {
    const obs::JsonValue* v = summary->Find(key);
    if (v == nullptr || !v->is_number()) {
      Fail(std::string("maint summary without a numeric \"") + key + "\"");
      return nullptr;
    }
    return v;
  };
  const obs::JsonValue* updates = number("updates");
  const obs::JsonValue* per_view = number("per_view_evals");
  const obs::JsonValue* shared = number("shared_evals");
  const obs::JsonValue* shared_rounds = number("shared_query_rounds");
  const obs::JsonValue* avoided = number("query_rounds_avoided");
  const obs::JsonValue* aux_bytes = number("aux_bytes");
  const obs::JsonValue* per_view_p99 = number("per_view_commit_p99_us");
  const obs::JsonValue* shared_p99 = number("shared_commit_p99_us");
  if (updates != nullptr && updates->AsInt() <= 0) {
    Fail("maint summary processed no updates");
  }
  if (per_view != nullptr && shared != nullptr &&
      shared->AsInt() >= per_view->AsInt()) {
    Fail("maint summary shared_evals " + std::to_string(shared->AsInt()) +
         " did not undercut per_view_evals " +
         std::to_string(per_view->AsInt()) + " (the plan is not sharing)");
  }
  if (shared_rounds != nullptr && shared_rounds->AsInt() != 0) {
    Fail("maint summary shows " + std::to_string(shared_rounds->AsInt()) +
         " source query rounds on the self-maintaining path");
  }
  if (avoided != nullptr && avoided->AsInt() <= 0) {
    Fail("maint summary query_rounds_avoided is not positive");
  }
  if (aux_bytes != nullptr && aux_bytes->AsInt() <= 0) {
    Fail("maint summary aux_bytes is not positive");
  }
  if (per_view_p99 != nullptr && per_view_p99->AsInt() <= 0) {
    Fail("maint summary per_view_commit_p99_us is not positive");
  }
  if (shared_p99 != nullptr && shared_p99->AsInt() <= 0) {
    Fail("maint summary shared_commit_p99_us is not positive");
  }
}

void CheckBench(const obs::JsonValue& root, std::string* schema_out,
                size_t* record_count) {
  const obs::JsonValue* records = BenchRecords(root, schema_out);
  if (records == nullptr) return;
  if (records->array.empty()) {
    Fail("bench file contains no records");
    return;
  }
  *record_count = records->array.size();
  std::vector<std::string> seen;
  for (const obs::JsonValue& record : records->array) {
    if (!record.is_object()) {
      Fail("bench record is not an object");
      continue;
    }
    const obs::JsonValue* name = record.Find("name");
    if (name == nullptr || !name->is_string() || name->str.empty()) {
      Fail("bench record without a name");
      continue;
    }
    if (std::find(seen.begin(), seen.end(), name->str) != seen.end()) {
      Fail("duplicate bench record '" + name->str + "'");
    }
    seen.push_back(name->str);
    const obs::JsonValue* iterations = record.Find("iterations");
    if (iterations == nullptr || !iterations->is_number() ||
        iterations->AsInt() <= 0) {
      Fail("bench record '" + name->str +
           "' without a positive iteration count");
    }
    const obs::JsonValue* ns = record.Find("ns_per_op");
    if (ns == nullptr || !ns->is_number() || ns->number < 0) {
      Fail("bench record '" + name->str +
           "' without a non-negative ns_per_op");
    }
    const obs::JsonValue* allocations = record.Find("allocations");
    if (allocations != nullptr &&
        (!allocations->is_number() || allocations->AsInt() < 0)) {
      Fail("bench record '" + name->str +
           "' has a negative or non-numeric allocations field");
    }
    if (*schema_out == "mvc-bench-vut-v1" && allocations == nullptr) {
      Fail("bench record '" + name->str +
           "' lacks the allocations count mvc-bench-vut-v1 requires");
    }
  }
  if (*schema_out == "mvc-bench-serve-v1") CheckServeSummary(root);
  if (*schema_out == "mvc-bench-ingest-v1") CheckIngestSummary(root);
  if (*schema_out == "mvc-bench-maint-v1") CheckMaintSummary(root);
}

/// Estimated q-quantile from non-cumulative {le, count} buckets.
int64_t BucketQuantile(const obs::JsonValue& entry, double q) {
  const obs::JsonValue* count = entry.Find("count");
  const obs::JsonValue* buckets = entry.Find("buckets");
  const obs::JsonValue* max = entry.Find("max");
  if (count == nullptr || buckets == nullptr || count->AsInt() == 0) {
    return 0;
  }
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(count->AsInt()) + 0.5));
  int64_t seen = 0;
  for (const obs::JsonValue& b : buckets->array) {
    seen += b.Find("count")->AsInt();
    if (seen >= rank) {
      const int64_t le = b.Find("le")->AsInt();
      return max != nullptr ? std::min(le, max->AsInt()) : le;
    }
  }
  return max != nullptr ? max->AsInt() : 0;
}

void PrintCounters(const obs::JsonValue& root) {
  const obs::JsonValue* counters = root.Find("counters");
  const obs::JsonValue* gauges = root.Find("gauges");
  if (counters != nullptr) {
    for (const obs::JsonValue& c : counters->array) {
      std::cout << c.Find("name")->str << "=" << c.Find("value")->AsInt()
                << "\n";
    }
  }
  if (gauges != nullptr) {
    for (const obs::JsonValue& g : gauges->array) {
      std::cout << g.Find("name")->str << "=" << g.Find("value")->AsInt()
                << " (gauge)\n";
    }
  }
}

/// Looks up an instrument by name in a counters/gauges array; returns
/// true and sets *value when present.
bool FindInstrument(const obs::JsonValue* entries, const std::string& name,
                    int64_t* value) {
  if (entries == nullptr || !entries->is_array()) return false;
  for (const obs::JsonValue& e : entries->array) {
    const obs::JsonValue* n = e.Find("name");
    const obs::JsonValue* v = e.Find("value");
    if (n != nullptr && n->is_string() && n->str == name && v != nullptr &&
        v->is_number()) {
      *value = v->AsInt();
      return true;
    }
  }
  return false;
}

/// One-line digest of the background compactor, printed only when the
/// run had compaction wired up (compact.* counters present).
void PrintCompactionSummary(const obs::JsonValue& root) {
  const obs::JsonValue* counters = root.Find("counters");
  const obs::JsonValue* gauges = root.Find("gauges");
  int64_t merges = 0;
  if (!FindInstrument(counters, "compact.merges_total", &merges)) return;
  int64_t discarded = 0, collapsed = 0, reclaimed = 0;
  FindInstrument(counters, "compact.merges_discarded", &discarded);
  FindInstrument(counters, "compact.versions_collapsed", &collapsed);
  FindInstrument(counters, "compact.bytes_reclaimed", &reclaimed);
  std::cout << "== compaction ==\n";
  std::cout << "merges=" << merges << " discarded=" << discarded
            << " versions_collapsed=" << collapsed
            << " bytes_reclaimed=" << reclaimed;
  int64_t inflight = 0;
  if (FindInstrument(gauges, "compact.inflight", &inflight)) {
    std::cout << " inflight=" << inflight;
  }
  int64_t live = 0;
  if (FindInstrument(gauges, "warehouse.versions_live", &live)) {
    std::cout << " versions_live=" << live;
  }
  std::cout << "\n";
}

void PrintSummary(const obs::JsonValue& root) {
  std::cout << "== counters ==\n";
  PrintCounters(root);
  PrintCompactionSummary(root);
  const obs::JsonValue* histograms = root.Find("histograms");
  if (histograms == nullptr) return;
  std::cout << "== histograms ==\n";
  for (const obs::JsonValue& h : histograms->array) {
    const obs::JsonValue* unit = h.Find("unit");
    const obs::JsonValue* count = h.Find("count");
    const obs::JsonValue* sum = h.Find("sum");
    const obs::JsonValue* max = h.Find("max");
    const int64_t n = count != nullptr ? count->AsInt() : 0;
    const std::string u =
        unit != nullptr && unit->is_string() ? unit->str : "";
    std::cout << h.Find("name")->str << ": n=" << n;
    if (n > 0) {
      const double mean =
          static_cast<double>(sum->AsInt()) / static_cast<double>(n);
      char mean_buf[32];
      std::snprintf(mean_buf, sizeof(mean_buf), "%.1f", mean);
      std::cout << " mean=" << mean_buf << u
                << " p50=" << BucketQuantile(h, 0.5) << u
                << " p95=" << BucketQuantile(h, 0.95) << u
                << " max=" << max->AsInt() << u;
    }
    std::cout << "\n";
  }
}

int Main(int argc, char** argv) {
  bool check = false;
  bool check_bench = false;
  bool counters_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--check-bench") {
      check_bench = true;
    } else if (arg == "--counters") {
      counters_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: mvc_stats [--check|--counters] METRICS.json\n"
                   "       mvc_stats --check-bench BENCH.json\n"
                   "Pretty-print or validate an mvc-metrics-v1 file\n"
                   "(written by mvc_sim --metrics-out), or validate a\n"
                   "BENCH_*.json bench-result file.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "more than one input file (see --help)\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "no input file (see --help)\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto root = obs::JsonValue::Parse(buffer.str());
  if (!root.ok()) {
    std::cerr << "mvc_stats: " << path << ": " << root.status() << "\n";
    return 1;
  }
  if (check_bench) {
    std::string schema = "legacy array";
    size_t record_count = 0;
    CheckBench(*root, &schema, &record_count);
    if (g_errors > 0) {
      std::cerr << "mvc_stats: " << path << ": " << g_errors
                << " problem(s)\n";
      return 1;
    }
    std::cout << path << ": OK (" << record_count << " bench records, "
              << schema << ")\n";
    return 0;
  }
  if (check) {
    Check(*root);
    if (g_errors > 0) {
      std::cerr << "mvc_stats: " << path << ": " << g_errors
                << " problem(s)\n";
      return 1;
    }
    std::cout << path << ": OK (mvc-metrics-v1)\n";
    return 0;
  }
  if (counters_only) {
    PrintCounters(*root);
  } else {
    PrintSummary(*root);
  }
  return 0;
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) { return mvc::Main(argc, argv); }
