// mvc_sim — command-line driver for the WHIPS-MVC warehouse simulator.
//
// Generates a parameterized workload, runs it through the configured
// architecture, and prints a run report: deployment plan, throughput,
// freshness, merge pressure, and the consistency-oracle verdicts.
//
//   mvc_sim --txns 500 --views 8 --rate 500 --managers strong --merges 2
//   mvc_sim --sequential-baseline --txns 100
//   mvc_sim --algorithm passthrough --check strong   # watch MVC break

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "fault/fault_plan.h"
#include "merge/merge_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/scenario_parser.h"
#include "system/run_report.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"

namespace mvc {
namespace {

struct Flags {
  std::string scenario_file;
  bool managers_given = false;
  int txns = 200;
  int views = 6;
  int sources = 2;
  int relations_per_source = 2;
  int view_width = 3;
  int updates_per_txn = 1;
  double global_fraction = 0.0;
  int64_t rate_us = 1000;
  int64_t delta_cost_us = 500;
  int64_t per_al_cost_us = 0;
  int64_t merge_cpu_us = 0;
  int64_t latency_us = 300;
  int64_t jitter_us = 500;
  std::string managers = "complete";
  std::string policy = "hold";
  std::string algorithm = "auto";
  size_t batch = 4;
  size_t merges = 1;
  uint64_t seed = 1;
  bool sequential_baseline = false;
  bool no_pruning = false;
  bool piggyback = false;
  bool threads = false;
  std::string check = "auto";
  bool compaction = false;
  bool show_views = false;
  std::string faults;
  int checkpoint_every = 4;
  std::string metrics_out;
  std::string trace_out;
  std::string prom_out;
};

void Usage() {
  std::cout <<
      "mvc_sim: run a multiple-view-consistency warehouse scenario\n\n"
      "Workload:\n"
      "  --txns N                source transactions (default 200)\n"
      "  --views N               warehouse views (default 6)\n"
      "  --sources N             data sources (default 2)\n"
      "  --relations-per-source N (default 2)\n"
      "  --view-width N          max relations joined per view (default 3)\n"
      "  --updates-per-txn N     updates per transaction (default 1)\n"
      "  --global-fraction F     fraction of two-source global txns\n"
      "  --rate US               mean inter-arrival time (default 1000)\n"
      "  --seed N                workload + runtime seed (default 1)\n\n"
      "Architecture:\n"
      "  --managers KIND         complete|strong|periodic|convergent|\n"
      "                          complete-n (default complete)\n"
      "  --algorithm ALG         auto|spa|pa|passthrough (default auto)\n"
      "  --policy P              sequential|hold|annotate|batched\n"
      "  --batch N               BWT size for --policy batched\n"
      "  --merges N              merge processes (distributed merge)\n"
      "  --sequential-baseline   the Section 1.1 strawman instead\n"
      "  --no-pruning            disable relevance pruning\n"
      "  --piggyback             REL via view managers (Section 3.2)\n\n"
      "Costs:\n"
      "  --delta-cost US         per-update delta computation cost\n"
      "  --per-al-cost US        fixed cost per action list\n"
      "  --merge-cpu US          merge processing cost per message\n"
      "  --latency US / --jitter US   channel latency model\n\n"
      "Fault injection:\n"
      "  --faults SPEC           crash schedule target@at[+down_for],...\n"
      "                          e.g. vm-V1@5000+30000,merge-0@12000;\n"
      "                          targets are process names (vm-<view>,\n"
      "                          merge-<g>). Wires checkpointing, the\n"
      "                          merge WAL, and recovery resync\n"
      "  --checkpoint-every N    view-manager checkpoint period in\n"
      "                          emitted action lists (default 4)\n\n"
      "Execution:\n"
      "  --threads               real threads instead of the simulator\n"
      "  --check LEVEL           auto|complete|strong|convergent|none\n"
      "  --compaction            run the background compactor (tiered\n"
      "                          policy defaults; retains >= 64 versions\n"
      "                          so it has history to manage)\n"
      "  --show-views            print final view contents\n\n"
      "Observability:\n"
      "  --metrics-out FILE      write the metrics snapshot as JSON\n"
      "                          (schema mvc-metrics-v1; validate with\n"
      "                          tools/mvc_stats --check)\n"
      "  --trace-out FILE        write the span log as JSON\n"
      "                          (schema mvc-trace-v1)\n"
      "  --prom-out FILE         write the metrics snapshot in Prometheus\n"
      "                          text exposition format\n"
      "                          Any of these turns instrumentation on;\n"
      "                          see docs/OBSERVABILITY.md\n\n"
      "Scenario files:\n"
      "  --scenario FILE         run a .mvc scenario file instead of a\n"
      "                          generated workload (see examples/*.mvc;\n"
      "                          workload flags are then ignored, cost/\n"
      "                          architecture flags still apply)\n";
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else if (arg == "--txns") {
      flags->txns = std::atoi(next());
    } else if (arg == "--views") {
      flags->views = std::atoi(next());
    } else if (arg == "--sources") {
      flags->sources = std::atoi(next());
    } else if (arg == "--relations-per-source") {
      flags->relations_per_source = std::atoi(next());
    } else if (arg == "--view-width") {
      flags->view_width = std::atoi(next());
    } else if (arg == "--updates-per-txn") {
      flags->updates_per_txn = std::atoi(next());
    } else if (arg == "--global-fraction") {
      flags->global_fraction = std::atof(next());
    } else if (arg == "--rate") {
      flags->rate_us = std::atoll(next());
    } else if (arg == "--delta-cost") {
      flags->delta_cost_us = std::atoll(next());
    } else if (arg == "--per-al-cost") {
      flags->per_al_cost_us = std::atoll(next());
    } else if (arg == "--merge-cpu") {
      flags->merge_cpu_us = std::atoll(next());
    } else if (arg == "--latency") {
      flags->latency_us = std::atoll(next());
    } else if (arg == "--jitter") {
      flags->jitter_us = std::atoll(next());
    } else if (arg == "--managers") {
      flags->managers = next();
      flags->managers_given = true;
    } else if (arg == "--scenario") {
      flags->scenario_file = next();
    } else if (arg == "--policy") {
      flags->policy = next();
    } else if (arg == "--algorithm") {
      flags->algorithm = next();
    } else if (arg == "--batch") {
      flags->batch = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--merges") {
      flags->merges = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      flags->seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--sequential-baseline") {
      flags->sequential_baseline = true;
    } else if (arg == "--no-pruning") {
      flags->no_pruning = true;
    } else if (arg == "--piggyback") {
      flags->piggyback = true;
    } else if (arg == "--threads") {
      flags->threads = true;
    } else if (arg == "--faults") {
      flags->faults = next();
    } else if (arg == "--checkpoint-every") {
      flags->checkpoint_every = std::atoi(next());
    } else if (arg == "--metrics-out") {
      flags->metrics_out = next();
    } else if (arg == "--trace-out") {
      flags->trace_out = next();
    } else if (arg == "--prom-out") {
      flags->prom_out = next();
    } else if (arg == "--check") {
      flags->check = next();
    } else if (arg == "--compaction") {
      flags->compaction = true;
    } else if (arg == "--show-views") {
      flags->show_views = true;
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      return false;
    }
  }
  return true;
}

Result<SystemConfig> BuildConfig(const Flags& flags) {
  if (!flags.scenario_file.empty()) {
    MVC_ASSIGN_OR_RETURN(SystemConfig config,
                         ParseScenarioFile(flags.scenario_file));
    // Architecture / cost flags still apply; the file owns the layout,
    // views, managers, and workload.
    if (flags.managers_given) {
      ManagerKind kind = ManagerKind::kComplete;
      if (flags.managers == "strong") kind = ManagerKind::kStrong;
      if (flags.managers == "periodic") kind = ManagerKind::kPeriodic;
      if (flags.managers == "convergent") kind = ManagerKind::kConvergent;
      if (flags.managers == "complete-n") kind = ManagerKind::kCompleteN;
      for (const ViewDefinition& def : config.views) {
        config.manager_kinds[def.name] = kind;
      }
    }
    config.num_merge_processes = flags.merges;
    config.vm_options.delta_cost = flags.delta_cost_us;
    config.vm_options.per_al_cost = flags.per_al_cost_us;
    config.merge.process_delay = flags.merge_cpu_us;
    config.integrator.relevance_pruning = !flags.no_pruning;
    config.integrator.piggyback_rel = flags.piggyback;
    config.latency =
        LatencyModel::Uniform(flags.latency_us, flags.jitter_us);
    config.use_threads = flags.threads;
    config.seed = flags.seed;
    if (flags.algorithm != "auto") {
      config.auto_algorithm = false;
      if (flags.algorithm == "spa") {
        config.merge.algorithm = MergeAlgorithm::kSPA;
      } else if (flags.algorithm == "pa") {
        config.merge.algorithm = MergeAlgorithm::kPA;
      } else if (flags.algorithm == "passthrough") {
        config.merge.algorithm = MergeAlgorithm::kPassThrough;
      }
    }
    return config;
  }

  WorkloadSpec spec;
  spec.seed = flags.seed;
  spec.num_sources = flags.sources;
  spec.relations_per_source = flags.relations_per_source;
  spec.num_views = flags.views;
  spec.max_view_width = flags.view_width;
  spec.num_transactions = flags.txns;
  spec.updates_per_transaction = flags.updates_per_txn;
  spec.global_txn_fraction = flags.global_fraction;
  spec.mean_interarrival = flags.rate_us;
  MVC_ASSIGN_OR_RETURN(SystemConfig config, GenerateScenario(spec));

  ManagerKind kind;
  if (flags.managers == "complete") {
    kind = ManagerKind::kComplete;
  } else if (flags.managers == "strong") {
    kind = ManagerKind::kStrong;
  } else if (flags.managers == "periodic") {
    kind = ManagerKind::kPeriodic;
  } else if (flags.managers == "convergent") {
    kind = ManagerKind::kConvergent;
  } else if (flags.managers == "complete-n") {
    kind = ManagerKind::kCompleteN;
  } else {
    return Status::InvalidArgument("bad --managers " + flags.managers);
  }
  for (const ViewDefinition& def : config.views) {
    config.manager_kinds[def.name] = kind;
  }

  if (flags.policy == "sequential") {
    config.merge.policy = SubmissionPolicy::kSequential;
  } else if (flags.policy == "hold") {
    config.merge.policy = SubmissionPolicy::kHoldDependents;
  } else if (flags.policy == "annotate") {
    config.merge.policy = SubmissionPolicy::kAnnotate;
  } else if (flags.policy == "batched") {
    config.merge.policy = SubmissionPolicy::kBatched;
    config.merge.batch_size = flags.batch;
  } else {
    return Status::InvalidArgument("bad --policy " + flags.policy);
  }

  if (flags.algorithm != "auto") {
    config.auto_algorithm = false;
    if (flags.algorithm == "spa") {
      config.merge.algorithm = MergeAlgorithm::kSPA;
    } else if (flags.algorithm == "pa") {
      config.merge.algorithm = MergeAlgorithm::kPA;
    } else if (flags.algorithm == "passthrough") {
      config.merge.algorithm = MergeAlgorithm::kPassThrough;
    } else {
      return Status::InvalidArgument("bad --algorithm " + flags.algorithm);
    }
  }

  config.num_merge_processes = flags.merges;
  config.vm_options.delta_cost = flags.delta_cost_us;
  config.vm_options.per_al_cost = flags.per_al_cost_us;
  config.merge.process_delay = flags.merge_cpu_us;
  config.integrator.relevance_pruning = !flags.no_pruning;
  config.integrator.piggyback_rel = flags.piggyback;
  config.latency = LatencyModel::Uniform(flags.latency_us, flags.jitter_us);
  config.sequential_baseline = flags.sequential_baseline;
  config.sequential.delta_cost = flags.delta_cost_us;
  config.use_threads = flags.threads;
  config.seed = flags.seed;
  return config;
}

int Run(const Flags& flags) {
  auto config = BuildConfig(flags);
  if (!config.ok()) {
    std::cerr << config.status() << "\n";
    return 2;
  }
  if (!flags.faults.empty()) {
    // Flag events join any `fault` statements from the scenario file.
    auto plan = ParseFaultSpec(flags.faults);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 2;
    }
    config->fault.plan.events.insert(config->fault.plan.events.end(),
                                     plan->events.begin(),
                                     plan->events.end());
  }
  config->fault.checkpoint_every = flags.checkpoint_every;
  if (flags.compaction) {
    config->compaction.enabled = true;
    // The compactor is pointless without retained history to trim.
    if (config->warehouse.max_retained_versions < 64) {
      config->warehouse.max_retained_versions = 64;
    }
  }
  const bool want_obs = !flags.metrics_out.empty() ||
                        !flags.trace_out.empty() || !flags.prom_out.empty();
  if (want_obs) {
    config->collect_metrics = true;
    config->collect_trace = true;
  }
  auto system = WarehouseSystem::Build(std::move(*config));
  if (!system.ok()) {
    std::cerr << "build failed: " << system.status() << "\n";
    return 2;
  }

  if (flags.scenario_file.empty()) {
    std::cout << "Scenario: " << flags.txns << " txns, " << flags.views
              << " views over " << flags.sources << " sources, mean rate "
              << flags.rate_us << "us, seed " << flags.seed << "\n";
  } else {
    std::cout << "Scenario file: " << flags.scenario_file << "\n";
  }
  if (flags.sequential_baseline) {
    std::cout << "Architecture: sequential integrator strawman "
                 "(Section 1.1)\n";
  } else {
    std::cout << "Architecture: " << (*system)->view_managers().size()
              << " view managers (" << flags.managers << "), "
              << (*system)->merges().size() << " merge process(es)\n";
    for (size_t g = 0; g < (*system)->view_groups().size(); ++g) {
      std::cout << "  merge-" << g << " ["
                << MergeAlgorithmToString(
                       (*system)->merges()[g]->engine().algorithm())
                << "/" << SubmissionPolicyToString(
                              (*system)->merges()[g]->options().policy)
                << "] views {"
                << JoinToString((*system)->view_groups()[g].views, ", ")
                << "}\n";
    }
  }
  std::cout << "\nRunning...\n";
  (*system)->Run();

  const ConsistencyRecorder& recorder = (*system)->recorder();
  FreshnessStats freshness = recorder.ComputeFreshness();
  std::cout << "\nResults\n"
            << "  updates numbered:      " << recorder.updates().size()
            << "\n"
            << "  warehouse commits:     " << recorder.commits().size()
            << "\n"
            << "  virtual makespan:      " << (*system)->runtime().Now()
            << " us\n"
            << "  messages:              "
            << (*system)->runtime().stats().total_messages << "\n"
            << "  freshness:             " << freshness.ToString() << "\n";
  for (const auto& merge : (*system)->merges()) {
    std::cout << "  " << merge->name() << ": submitted="
              << merge->stats().transactions_submitted
              << " peak_held_ALs=" << merge->stats().peak_held_action_lists
              << " peak_rows=" << merge->stats().peak_open_rows
              << " peak_backlog=" << merge->stats().peak_backlog << "\n";
  }
  if ((*system)->compactor() != nullptr) {
    const auto& cs = (*system)->compactor()->stats();
    std::cout << "  compactor: plans=" << cs.plans
              << " merges=" << cs.merges_applied
              << " discarded=" << cs.merges_discarded
              << " versions_collapsed=" << cs.versions_collapsed
              << " bytes_reclaimed=" << cs.bytes_reclaimed
              << " peak_inflight=" << cs.peak_inflight << "\n";
  }
  if ((*system)->faults_enabled()) {
    std::cout << "\n" << RunReportString(**system);
  }

  if (want_obs) {
    const obs::MetricsSnapshot snap = (*system)->MetricsSnapshot();
    if (!flags.metrics_out.empty()) {
      std::ofstream out(flags.metrics_out);
      if (!out) {
        std::cerr << "cannot write " << flags.metrics_out << "\n";
        return 2;
      }
      out << obs::MetricsToJson(snap);
    }
    if (!flags.prom_out.empty()) {
      std::ofstream out(flags.prom_out);
      if (!out) {
        std::cerr << "cannot write " << flags.prom_out << "\n";
        return 2;
      }
      out << obs::MetricsToPrometheus(snap);
    }
    if (!flags.trace_out.empty()) {
      std::ofstream out(flags.trace_out);
      if (!out) {
        std::cerr << "cannot write " << flags.trace_out << "\n";
        return 2;
      }
      out << obs::TraceToJson((*system)->TraceSnapshot(),
                              &(*system)->registry());
    }
    std::cout << "\nObservability\n";
    if (const auto* lat =
            obs::FindHistogram(snap, "update.commit_latency_us")) {
      std::cout << "  update->commit latency: n=" << lat->count
                << " p50=" << lat->Quantile(0.5) << "us"
                << " p95=" << lat->Quantile(0.95) << "us"
                << " max=" << lat->max << "us\n";
    }
    if (const auto* stale = obs::FindHistogram(snap, "view.staleness_us")) {
      std::cout << "  per-view staleness:     n=" << stale->count
                << " p50=" << stale->Quantile(0.5) << "us"
                << " p95=" << stale->Quantile(0.95) << "us"
                << " max=" << stale->max << "us\n";
    }
    std::cout << "  prompt violations:      "
              << obs::SumCounters(snap, "merge.prompt_violations") << "\n";
    if (!flags.metrics_out.empty()) {
      std::cout << "  metrics written to " << flags.metrics_out << "\n";
    }
    if (!flags.trace_out.empty()) {
      std::cout << "  trace written to " << flags.trace_out << "\n";
    }
  }

  if (flags.show_views) {
    std::cout << "\nFinal warehouse contents:\n";
    for (const std::string& name :
         (*system)->warehouse().views().TableNames()) {
      std::cout << (*system)->warehouse().views().GetTable(name).value()
                       ->ToString();
    }
  }

  std::string check = flags.check;
  if (check == "auto") {
    if (flags.algorithm == "passthrough" || flags.managers == "convergent") {
      check = "convergent";
    } else if (!flags.scenario_file.empty()) {
      // Scenario files may mix manager kinds; strong is the safe claim.
      check = "strong";
    } else if (flags.managers == "complete" && flags.policy != "batched") {
      check = "complete";
    } else {
      check = "strong";
    }
  }
  if (check == "none") return 0;

  ConsistencyChecker checker = (*system)->MakeChecker();
  Status verdict;
  if (check == "complete") {
    verdict = checker.CheckComplete(recorder);
  } else if (check == "strong") {
    verdict = checker.CheckStrong(recorder);
  } else if (check == "convergent") {
    verdict = checker.CheckConvergent(recorder);
  } else {
    std::cerr << "bad --check " << check << "\n";
    return 2;
  }
  std::cout << "\nConsistency oracle (" << check << "): " << verdict << "\n";
  return verdict.ok() ? 0 : 1;
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) {
  mvc::Flags flags;
  if (!mvc::ParseFlags(argc, argv, &flags)) return 2;
  return mvc::Run(flags);
}
