#!/usr/bin/env bash
# Project lint pass. Two layers:
#
#  1. clang-tidy (when installed) over src/ and tools/ with the checks
#     configured in .clang-tidy; any finding fails the script.
#  2. Actor discipline, always on: processes communicate only by message
#     passing, so no file under src/ outside src/net/ — and no CLI under
#     tools/ — may include a synchronization header (<thread>, <mutex>,
#     <atomic>, <condition_variable>, ...). Deliberate exceptions carry
#     an `mvc-lint: allow-sync` comment on the include line, with the
#     reason. Tests and benches are harness code and are exempt.
#
# Usage: tools/lint.sh

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- Layer 1: clang-tidy -------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f build/compile_commands.json ]; then
    cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t sources < <(find src tools -name '*.cc' -o -name '*.cpp' | sort)
  if ! clang-tidy -p build --quiet "${sources[@]}"; then
    echo "lint: clang-tidy reported findings" >&2
    fail=1
  fi
else
  echo "lint: clang-tidy not installed; skipping static checks"
fi

# --- Layer 2: actor discipline -------------------------------------------
pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*<(thread|mutex|shared_mutex|atomic|condition_variable|future|semaphore|barrier|latch|stop_token)>'
violations=$(grep -RInE "$pattern" src tools \
  --include='*.h' --include='*.cc' --include='*.cpp' 2>/dev/null \
  | grep -v '^src/net/' \
  | grep -v 'mvc-lint: allow-sync' || true)
if [ -n "$violations" ]; then
  {
    echo "lint: synchronization header outside src/net/. Actor code must"
    echo "      use message passing; annotate a deliberate exception with"
    echo "      'mvc-lint: allow-sync -- <reason>' on the include line:"
    echo "$violations"
  } >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lint: OK"
